(* gkm: command-line front end to the group-key-management library.

   Sub-commands:
     partition   two-partition rekeying costs (analytic model and/or
                 discrete simulation), optionally as CSV
     loss        loss-homogenized key-tree organization under a
                 reliable rekey transport (analytic and/or simulated)
     trace       generate / analyze membership traces (CSV)
     ne          evaluate the Appendix A batched-rekey cost Ne(N, L)
     session     run a full engine-driven session under any group
                 organization (--org one|qt|tt|pt|loss:..|composed)
     metrics     run a full session with observability on and dump the
                 metrics registry (human table + JSONL) and the event
                 journal
     chaos       run a session under a fault-injection plan twice plus
                 a fault-free baseline, checking determinism and
                 post-recovery DEK convergence
     serve       run a real rekey server on a TCP socket
     join        connect wire clients to a running server

   The sub-command group and the COMMANDS overview in --help are both
   derived from the single [command_table] at the bottom of this file;
   exit codes are documented centrally in [exits]. *)

open Cmdliner
open Gkm_analytic

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let n_arg =
  Arg.(value & opt int 65536 & info [ "n"; "group-size" ] ~docv:"N" ~doc:"Group size.")

let alpha_arg doc = Arg.(value & opt float 0.8 & info [ "alpha" ] ~docv:"A" ~doc)
let degree_arg = Arg.(value & opt int 4 & info [ "d"; "degree" ] ~docv:"D" ~doc:"Key tree degree.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")
let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit machine-readable CSV.")

let keys_arg =
  Arg.(
    value
    & opt (enum [ ("wrap", Gkm_keytree.Keytree.Wrap); ("derived", Gkm_keytree.Keytree.Derived) ]) Gkm_keytree.Keytree.Wrap
    & info [ "keys" ] ~docv:"MODE"
        ~doc:
          "Key-refresh mode: $(b,wrap) (classical LKH key wrapping) or $(b,derived) \
           (KDF-derived node-key refresh; rekey entries carry 4-byte derivation \
           notices instead of 32-byte wraps where possible).")

let apply_keys_mode mode spec = Gkm.Organization.with_keys_mode mode spec

let enum_arg ~names ~default ~doc name =
  Arg.(value & opt (enum names) default & info [ name ] ~doc)

(* Exit-code convention, shared by every sub-command: 0 success, 1
   failed verdict or runtime failure, 2 invalid configuration or
   malformed input, plus cmdliner's own 123-125. *)
let common_exits =
  Cmd.Exit.info 1
    ~doc:
      "on a failed verdict (verification, determinism, DEK convergence) or a runtime \
       failure such as an unreachable server."
  :: Cmd.Exit.info 2 ~doc:"on an invalid configuration or malformed input."
  :: Cmd.Exit.defaults

(* ------------------------------------------------------------------ *)
(* partition                                                           *)

let partition_cmd =
  let run n alpha degree k ms ml tp simulate intervals seed csv =
    let p = { Params.n; alpha; d = degree; k; ms; ml; tp } in
    (try Params.validate p
     with Invalid_argument e ->
       prerr_endline e;
       exit 2);
    let schemes =
      [
        ("one-keytree", Two_partition.One_keytree, Gkm.Scheme.One_keytree);
        ("qt", Two_partition.Qt, Gkm.Scheme.Qt);
        ("tt", Two_partition.Tt, Gkm.Scheme.Tt);
        ("pt", Two_partition.Pt, Gkm.Scheme.Pt);
      ]
    in
    if csv then
      print_endline
        (if simulate then "scheme,analytic_keys,sim_keys,sim_ci95" else "scheme,analytic_keys")
    else begin
      Printf.printf "Two-partition rekeying costs (%s)\n" (Format.asprintf "%a" Params.pp p);
      Printf.printf "%-14s %14s%s\n" "scheme" "analytic"
        (if simulate then "        sim (+-95%)" else "")
    end;
    List.iter
      (fun (name, analytic_scheme, sim_kind) ->
        let analytic = Two_partition.cost p analytic_scheme in
        if simulate then begin
          let r =
            Gkm.Sim_driver.run_partition ~degree ~seed ~n ~alpha ~ms ~ml ~tp ~s_period:k
              ~warmup:(max 5 (intervals / 4)) ~intervals ~kind:sim_kind ()
          in
          if csv then Printf.printf "%s,%.2f,%.2f,%.2f\n" name analytic r.mean_keys r.ci95
          else Printf.printf "%-14s %14.1f %11.1f (+-%.1f)\n" name analytic r.mean_keys r.ci95
        end
        else if csv then Printf.printf "%s,%.2f\n" name analytic
        else Printf.printf "%-14s %14.1f\n" name analytic)
      schemes
  in
  let k_arg = Arg.(value & opt int 10 & info [ "k"; "s-period" ] ~doc:"S-period in intervals.") in
  let ms_arg = Arg.(value & opt float 180.0 & info [ "ms" ] ~doc:"Mean short duration (s).") in
  let ml_arg = Arg.(value & opt float 10800.0 & info [ "ml" ] ~doc:"Mean long duration (s).") in
  let tp_arg = Arg.(value & opt float 60.0 & info [ "tp" ] ~doc:"Rekey interval (s).") in
  let sim_arg = Arg.(value & flag & info [ "simulate" ] ~doc:"Also run the discrete simulation.") in
  let intervals_arg =
    Arg.(value & opt int 40 & info [ "intervals" ] ~doc:"Measured simulation intervals.")
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Two-partition scheme costs (Section 3)")
    Term.(
      const run $ n_arg
      $ alpha_arg "Fraction of short-duration joins."
      $ degree_arg $ k_arg $ ms_arg $ ml_arg $ tp_arg $ sim_arg $ intervals_arg $ seed_arg
      $ csv_arg)

(* ------------------------------------------------------------------ *)
(* loss                                                                *)

let loss_cmd =
  let run n l alpha ph pl degree simulate trials transport seed csv =
    let c = { Loss_homogenized.n; l; d = degree; ph; pl } in
    (try Loss_homogenized.validate c
     with Invalid_argument e ->
       prerr_endline e;
       exit 2);
    let orgs =
      [
        ("one-keytree", Some `One);
        ("two-random", Some `Random);
        ("loss-homogenized", Some `Homog);
      ]
      (* The composed organization has no closed-form analytic model;
         it appears as a simulation-only row. *)
      @ (if simulate then [ ("composed", None) ] else [])
    in
    if csv then
      print_endline
        (if simulate then "organization,analytic_keys,sim_keys" else "organization,analytic_keys")
    else begin
      Printf.printf
        "Loss-homogenized organization (N=%d L=%d d=%d ph=%g pl=%g alpha=%g)\n" n l degree ph
        pl alpha;
      Printf.printf "%-18s %14s%s\n" "organization" "analytic"
        (if simulate then "          sim" else "")
    end;
    List.iter
      (fun (name, which) ->
        let analytic =
          match which with
          | Some `One -> Some (Loss_homogenized.one_keytree c ~alpha)
          | Some `Random -> Some (Loss_homogenized.two_random c ~alpha)
          | Some `Homog -> Some (Loss_homogenized.loss_homogenized c ~alpha)
          | None -> None
        in
        let analytic_csv = match analytic with Some a -> Printf.sprintf "%.1f" a | None -> "" in
        let analytic_col = match analytic with Some a -> Printf.sprintf "%14.1f" a | None -> Printf.sprintf "%14s" "-" in
        if simulate then begin
          let threshold = (ph +. pl) /. 2.0 in
          let organization =
            match which with
            | Some `One -> Gkm.Sim_driver.Org_one
            | Some `Random -> Gkm.Sim_driver.Org_random 2
            | Some `Homog -> Gkm.Sim_driver.Org_homogenized threshold
            | None ->
                (* PT inside each band: a join-time experiment has no
                   churn to drive TT migrations, so the oracle scheme
                   is the one that populates both partitions. *)
                Gkm.Sim_driver.Org_composed { threshold; kind = Gkm.Scheme.Pt; s_period = 10 }
          in
          let r =
            Gkm.Sim_driver.run_loss ~degree ~seed ~trials ~n ~l ~alpha ~ph ~pl ~organization
              ~transport ()
          in
          if csv then Printf.printf "%s,%s,%.1f\n" name analytic_csv r.mean_keys_sent
          else Printf.printf "%-18s %s %12.1f\n" name analytic_col r.mean_keys_sent
        end
        else if csv then Printf.printf "%s,%s\n" name analytic_csv
        else Printf.printf "%-18s %s\n" name analytic_col)
      orgs
  in
  let l_arg = Arg.(value & opt int 256 & info [ "l"; "departures" ] ~doc:"Batched departures.") in
  let ph_arg = Arg.(value & opt float 0.2 & info [ "ph" ] ~doc:"High loss rate.") in
  let pl_arg = Arg.(value & opt float 0.02 & info [ "pl" ] ~doc:"Low loss rate.") in
  let sim_arg =
    Arg.(value & flag & info [ "simulate" ] ~doc:"Also run the delivery simulation.")
  in
  let trials_arg = Arg.(value & opt int 3 & info [ "trials" ] ~doc:"Simulation trials.") in
  let transport_arg =
    enum_arg
      ~names:
        [
          ("wka-bkr", Gkm.Sim_driver.Wka_bkr_transport);
          ("multi-send", Gkm.Sim_driver.Multi_send_transport 2);
          ("fec", Gkm.Sim_driver.Fec_transport 0.25);
        ]
      ~default:Gkm.Sim_driver.Wka_bkr_transport
      ~doc:"Rekey transport for the simulation (wka-bkr, multi-send, fec)." "transport"
  in
  Cmd.v
    (Cmd.info "loss" ~doc:"Loss-homogenized key trees (Section 4)")
    Term.(
      const run $ n_arg $ l_arg
      $ alpha_arg "Fraction of high-loss receivers."
      $ ph_arg $ pl_arg $ degree_arg $ sim_arg $ trials_arg $ transport_arg $ seed_arg
      $ csv_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_generate_cmd =
  let run n alpha ms ml tp horizon seed =
    match
      Gkm_workload.Membership.of_params ~n_target:n ~alpha ~ms ~ml ~tp
    with
    | exception Invalid_argument e ->
        prerr_endline e;
        exit 2
    | cfg ->
        let events =
          Gkm_workload.Membership.generate cfg
            ~rng:(Gkm_crypto.Prng.create seed)
            ~horizon
        in
        print_string (Gkm_workload.Trace.to_csv events)
  in
  let ms_arg = Arg.(value & opt float 180.0 & info [ "ms" ] ~doc:"Mean short duration (s).") in
  let ml_arg = Arg.(value & opt float 10800.0 & info [ "ml" ] ~doc:"Mean long duration (s).") in
  let tp_arg = Arg.(value & opt float 60.0 & info [ "tp" ] ~doc:"Rekey interval (s).") in
  let horizon_arg =
    Arg.(value & opt float 3600.0 & info [ "horizon" ] ~doc:"Trace length (s).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a two-class membership trace as CSV on stdout")
    Term.(
      const run $ n_arg
      $ alpha_arg "Fraction of short-duration joins."
      $ ms_arg $ ml_arg $ tp_arg $ horizon_arg $ seed_arg)

let trace_fit_cmd =
  let run file tp =
    let read_all ic =
      let buf = Buffer.create 65536 in
      (try
         while true do
           Buffer.add_channel buf ic 65536
         done
       with End_of_file -> ());
      Buffer.contents buf
    in
    let text =
      match file with
      | "-" -> read_all stdin
      | path ->
          let ic = open_in path in
          let s = read_all ic in
          close_in ic;
          s
    in
    match Gkm_workload.Trace.of_csv text with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok events -> (
        let durations = Gkm_workload.Trace.durations events in
        Printf.printf "events:     %d\n" (List.length events);
        Printf.printf "completed:  %d memberships\n" (List.length durations);
        Printf.printf "censored:   %d still present at trace end\n"
          (Gkm_workload.Trace.censored events);
        match Gkm_workload.Fit.em durations with
        | exception Invalid_argument e ->
            prerr_endline ("cannot fit: " ^ e);
            exit 2
        | m ->
            Printf.printf "EM fit:     alpha=%.3f Ms=%.1fs Ml=%.1fs\n" m.alpha m.ms m.ml;
            let live =
              List.fold_left
                (fun acc (e : Gkm_workload.Membership.event) ->
                  match e.kind with `Join -> acc + 1 | `Depart -> acc - 1)
                0 events
            in
            let p =
              {
                Params.default with
                n = max 2 live;
                alpha = m.alpha;
                ms = m.ms;
                ml = m.ml;
                tp;
              }
            in
            Printf.printf "\nAnalytic recommendation (N=%d, Tp=%gs):\n" p.n tp;
            List.iter
              (fun scheme ->
                let k, cost = Two_partition.best_k p scheme ~k_max:30 in
                Printf.printf "  %-12s best K=%-3d %10.1f keys/interval\n"
                  (Two_partition.scheme_name scheme)
                  k cost)
              [ Two_partition.One_keytree; Two_partition.Qt; Two_partition.Tt ])
  in
  let file_arg =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Trace CSV ('-' for stdin).")
  in
  let tp_arg = Arg.(value & opt float 60.0 & info [ "tp" ] ~doc:"Rekey interval (s).") in
  Cmd.v
    (Cmd.info "fit" ~doc:"Fit the two-exponential mixture to a trace and recommend a scheme")
    Term.(const run $ file_arg $ tp_arg)

let trace_cmd =
  Cmd.group (Cmd.info "trace" ~doc:"Membership traces") [ trace_generate_cmd; trace_fit_cmd ]

(* ------------------------------------------------------------------ *)
(* ne                                                                  *)

let ne_cmd =
  let run n l degree per_level =
    let cost = Batch_cost.expected_keys_int ~d:degree ~n ~l in
    Printf.printf "Ne(N=%d, L=%d, d=%d) = %.2f encrypted keys\n" n l degree cost;
    if per_level then begin
      Printf.printf "%8s %16s\n" "level" "updated keys";
      List.iter
        (fun (level, updated) -> Printf.printf "%8d %16.2f\n" level updated)
        (Batch_cost.per_level ~d:degree ~n ~l)
    end
  in
  let l_arg = Arg.(value & opt int 256 & info [ "l"; "departures" ] ~doc:"Batched departures.") in
  let per_level_arg =
    Arg.(value & flag & info [ "per-level" ] ~doc:"Break the cost down by tree level.")
  in
  Cmd.v
    (Cmd.info "ne" ~doc:"Evaluate the Appendix A batched-rekeying cost model")
    Term.(const run $ n_arg $ l_arg $ degree_arg $ per_level_arg)

(* ------------------------------------------------------------------ *)
(* session                                                             *)

let session_cmd =
  let run org_sel n alpha ms ml tp horizon degree k loss_alpha ph pl no_deliver no_verify
      seed csv keys =
    let spec =
      match
        Gkm.Organization.spec_of_string ~degree ~s_period:k ~seed:(seed + 1) org_sel
      with
      | Ok spec -> apply_keys_mode keys spec
      | Error e ->
          prerr_endline ("--org: " ^ e);
          exit 2
    in
    let cfg =
      {
        Gkm.Session.default_config with
        n_target = n;
        alpha_duration = alpha;
        ms;
        ml;
        tp;
        horizon;
        seed;
        loss_alpha;
        ph;
        pl;
        deliver = not no_deliver;
        verify = not no_verify;
        org = spec;
      }
    in
    let r =
      try Gkm.Session.run cfg
      with Invalid_argument e ->
        prerr_endline e;
        exit 2
    in
    let name = Gkm.Organization.spec_name spec in
    if csv then begin
      print_endline
        "organization,intervals,rekeys,mean_keys,mean_keys_sent,mean_rounds,mean_packets,deadline_misses,mean_size,final_size,verified";
      Printf.printf "%s,%d,%d,%.2f,%.2f,%.2f,%.2f,%d,%.2f,%d,%b\n" name r.intervals
        r.rekeys r.mean_keys r.mean_keys_sent r.mean_rounds r.mean_packets
        r.deadline_misses r.mean_size r.final_size r.verified
    end
    else begin
      Printf.printf
        "Session under %s: N=%d alpha=%g Tp=%gs horizon=%gs (loss: %g%% at ph=%g, rest pl=%g)\n"
        name n alpha tp horizon (100.0 *. loss_alpha) ph pl;
      Printf.printf "  intervals        %d (%d rekeyed)\n" r.intervals r.rekeys;
      Printf.printf "  keys/rekey       %.1f encrypted\n" r.mean_keys;
      if not no_deliver then begin
        Printf.printf "  delivery         %.1f key copies, %.1f packets, %.1f rounds per rekey\n"
          r.mean_keys_sent r.mean_packets r.mean_rounds;
        Printf.printf "  deadline misses  %d\n" r.deadline_misses
      end;
      Printf.printf "  group size       %.1f mean, %d final\n" r.mean_size r.final_size;
      if not no_verify then
        Printf.printf "  verified         %b (member convergence + eviction lockout)\n"
          r.verified
    end;
    if (not no_verify) && not r.verified then exit 1
  in
  let org_arg =
    Arg.(
      value & opt string "tt"
      & info [ "org" ] ~docv:"ORG"
          ~doc:
            "Group organization: $(b,one)|$(b,qt)|$(b,tt)|$(b,pt) (two-partition schemes), \
             $(b,loss:T1,T2,..) (loss-homogenized bands), $(b,random:K) (K random trees), \
             $(b,composed)[$(b,:KIND)[$(b,@T1,..)]] (a scheme inside each loss band).")
  in
  let n_arg =
    Arg.(value & opt int 400 & info [ "n"; "group-size" ] ~docv:"N" ~doc:"Steady-state group size.")
  in
  let ms_arg = Arg.(value & opt float 180.0 & info [ "ms" ] ~doc:"Mean short duration (s).") in
  let ml_arg = Arg.(value & opt float 10800.0 & info [ "ml" ] ~doc:"Mean long duration (s).") in
  let tp_arg = Arg.(value & opt float 60.0 & info [ "tp" ] ~doc:"Rekey interval (s).") in
  let horizon_arg =
    Arg.(value & opt float 3600.0 & info [ "horizon" ] ~doc:"Session length (s).")
  in
  let k_arg = Arg.(value & opt int 10 & info [ "k"; "s-period" ] ~doc:"S-period in intervals.") in
  let loss_alpha_arg =
    Arg.(value & opt float 0.25 & info [ "loss-alpha" ] ~doc:"Fraction of high-loss receivers.")
  in
  let ph_arg = Arg.(value & opt float 0.2 & info [ "ph" ] ~doc:"High loss rate.") in
  let pl_arg = Arg.(value & opt float 0.02 & info [ "pl" ] ~doc:"Low loss rate.") in
  let no_deliver_arg =
    Arg.(value & flag & info [ "no-deliver" ] ~doc:"Skip the WKA-BKR delivery each interval.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip member-side verification.")
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Run a full engine-driven session (churn, batched rekeying, lossy delivery, \
          member verification) under any group organization")
    Term.(
      const run $ org_arg $ n_arg
      $ alpha_arg "Fraction of short-duration joins."
      $ ms_arg $ ml_arg $ tp_arg $ horizon_arg $ degree_arg $ k_arg $ loss_alpha_arg
      $ ph_arg $ pl_arg $ no_deliver_arg $ no_verify_arg $ seed_arg $ csv_arg $ keys_arg)

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)

let metrics_cmd =
  let module Obs = Gkm_obs.Obs in
  let module Metrics = Gkm_obs.Metrics in
  let module Journal = Gkm_obs.Journal in
  let run n alpha ms ml tp horizon kind degree k no_deliver no_verify seed jsonl_only
      journal_file =
    let cfg =
      {
        Gkm.Session.default_config with
        n_target = n;
        alpha_duration = alpha;
        ms;
        ml;
        tp;
        horizon;
        seed;
        deliver = not no_deliver;
        verify = not no_verify;
        org = Gkm.Organization.Scheme_cfg { Gkm.Scheme.kind; degree; s_period = k; seed = seed + 1 };
      }
    in
    Obs.set_enabled true;
    Metrics.reset Metrics.default;
    Journal.clear Journal.default;
    let oc =
      match journal_file with
      | None -> None
      | Some path ->
          let oc = open_out path in
          Journal.attach_channel Journal.default oc;
          Some oc
    in
    let r =
      try Gkm.Session.run cfg
      with Invalid_argument e ->
        prerr_endline e;
        exit 2
    in
    Journal.set_sink Journal.default None;
    Option.iter close_out oc;
    if not jsonl_only then begin
      Printf.printf
        "Session: %d intervals, %d rekeys, %.1f keys/rekey, %d deadline misses, verified=%b\n\n"
        r.intervals r.rekeys r.mean_keys r.deadline_misses r.verified;
      Format.printf "%a@." Metrics.pp_table Metrics.default
    end;
    (* JSONL: the registry, then the retained journal events — one
       self-describing JSON object per line. *)
    List.iter print_endline (Metrics.to_jsonl Metrics.default);
    List.iter
      (fun ev -> print_endline (Journal.to_jsonl_line ev))
      (Journal.events Journal.default)
  in
  let n_arg =
    Arg.(value & opt int 400 & info [ "n"; "group-size" ] ~docv:"N" ~doc:"Steady-state group size.")
  in
  let ms_arg = Arg.(value & opt float 180.0 & info [ "ms" ] ~doc:"Mean short duration (s).") in
  let ml_arg = Arg.(value & opt float 10800.0 & info [ "ml" ] ~doc:"Mean long duration (s).") in
  let tp_arg = Arg.(value & opt float 60.0 & info [ "tp" ] ~doc:"Rekey interval (s).") in
  let horizon_arg =
    Arg.(value & opt float 3600.0 & info [ "horizon" ] ~doc:"Session length (s).")
  in
  let scheme_arg =
    enum_arg
      ~names:
        [
          ("one-keytree", Gkm.Scheme.One_keytree);
          ("qt", Gkm.Scheme.Qt);
          ("tt", Gkm.Scheme.Tt);
          ("pt", Gkm.Scheme.Pt);
        ]
      ~default:Gkm.Scheme.Tt ~doc:"Rekeying scheme (one-keytree, qt, tt, pt)." "scheme"
  in
  let k_arg = Arg.(value & opt int 10 & info [ "k"; "s-period" ] ~doc:"S-period in intervals.") in
  let no_deliver_arg =
    Arg.(value & flag & info [ "no-deliver" ] ~doc:"Skip the WKA-BKR delivery each interval.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip member-side verification.")
  in
  let jsonl_only_arg =
    Arg.(value & flag & info [ "jsonl-only" ] ~doc:"Suppress the human-readable table.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Stream the complete event journal to $(docv) as it is recorded (the stdout \
                dump only retains the in-memory ring).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a full session with observability enabled and dump the metrics registry and \
          event journal (human table + JSONL)")
    Term.(
      const run $ n_arg
      $ alpha_arg "Fraction of short-duration joins."
      $ ms_arg $ ml_arg $ tp_arg $ horizon_arg $ scheme_arg $ degree_arg $ k_arg
      $ no_deliver_arg $ no_verify_arg $ seed_arg $ jsonl_only_arg $ journal_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)

let chaos_cmd =
  let module Obs = Gkm_obs.Obs in
  let module Metrics = Gkm_obs.Metrics in
  let module Journal = Gkm_obs.Journal in
  let default_plan =
    (* Touches every fault family within a 10-interval session. *)
    "crash@3;loss@120-300:0.3;desync@5:3;corrupt@7;drop@1:5"
  in
  let run plan_str org_sel n tp horizon degree k seed journal_file keys =
    let plan =
      match Gkm_fault.Fault.of_string plan_str with
      | Ok p -> p
      | Error e ->
          prerr_endline ("--plan: " ^ e);
          exit 2
    in
    let spec =
      match
        Gkm.Organization.spec_of_string ~degree ~s_period:k ~seed:(seed + 1) org_sel
      with
      | Ok spec -> apply_keys_mode keys spec
      | Error e ->
          prerr_endline ("--org: " ^ e);
          exit 2
    in
    let cfg =
      {
        Gkm.Session.default_config with
        n_target = n;
        ms = 120.0;
        ml = 1800.0;
        tp;
        horizon;
        seed;
        org = spec;
      }
    in
    Obs.set_enabled true;
    (* Three runs in one process: reset the registry and journal
       between them so nothing accumulates across repetitions. *)
    let fresh () =
      Metrics.reset_all ();
      Journal.clear Journal.default
    in
    let faulty () =
      fresh ();
      let buf = Buffer.create 4096 in
      Journal.set_sink Journal.default
        (Some
           (fun line ->
             Buffer.add_string buf line;
             Buffer.add_char buf '\n'));
      let r = Gkm.Session.run ~faults:plan cfg in
      Journal.set_sink Journal.default None;
      (r, Buffer.contents buf)
    in
    fresh ();
    let baseline =
      try Gkm.Session.run cfg
      with Invalid_argument e ->
        prerr_endline e;
        exit 2
    in
    let r1, j1 = faulty () in
    let r2, j2 = faulty () in
    (match journal_file with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc j1;
        close_out oc);
    let deterministic = r1 = r2 && j1 = j2 in
    (* Only the rejoin fallback re-draws organization keys; every
       other fault recovers onto the fault-free key sequence. *)
    let convergence_applies = r1.Gkm.Session.rejoins = 0 in
    let converged = r1.Gkm.Session.dek_trace = baseline.Gkm.Session.dek_trace in
    Printf.printf "Chaos run under %s: plan %s (seed %d)\n"
      (Gkm.Organization.spec_name spec)
      (Gkm_fault.Fault.to_string plan)
      seed;
    Printf.printf "  faults injected  %d\n" r1.Gkm.Session.faults_injected;
    Printf.printf "  crash restores   %d\n" r1.Gkm.Session.restores;
    Printf.printf "  resyncs          %d\n" r1.Gkm.Session.resyncs;
    Printf.printf "  rejoins          %d\n" r1.Gkm.Session.rejoins;
    Printf.printf "  verified         %b\n" r1.Gkm.Session.verified;
    Printf.printf "  recovered        %b\n" r1.Gkm.Session.recovered;
    Printf.printf "  deterministic    %b (re-run byte-identical, %d journal bytes)\n"
      deterministic (String.length j1);
    if convergence_applies then
      Printf.printf "  dek convergence  %b (vs fault-free baseline)\n" converged
    else
      Printf.printf "  dek convergence  skipped (%d rejoins re-draw keys)\n"
        r1.Gkm.Session.rejoins;
    let ok =
      baseline.Gkm.Session.verified && r1.Gkm.Session.verified
      && r1.Gkm.Session.recovered && deterministic
      && ((not convergence_applies) || converged)
    in
    if not ok then exit 1
  in
  let plan_arg =
    Arg.(
      value & opt string default_plan
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan: ';'-separated $(b,crash@K), $(b,loss@T0-T1:R)[$(b,:M,..)], \
             $(b,partition@T0-T1:M,..|*), $(b,drop@K:M), $(b,delay@K:M:D), $(b,corrupt@K), \
             $(b,desync@K:M).")
  in
  let org_arg =
    Arg.(
      value & opt string "tt"
      & info [ "org" ] ~docv:"ORG"
          ~doc:
            "Group organization: $(b,one)|$(b,qt)|$(b,tt)|$(b,pt), $(b,loss:T1,..), \
             $(b,random:K), or $(b,composed)[$(b,:KIND)[$(b,@T1,..)]].")
  in
  let n_arg =
    Arg.(value & opt int 60 & info [ "n"; "group-size" ] ~docv:"N" ~doc:"Steady-state group size.")
  in
  let tp_arg = Arg.(value & opt float 60.0 & info [ "tp" ] ~doc:"Rekey interval (s).") in
  let horizon_arg =
    Arg.(value & opt float 600.0 & info [ "horizon" ] ~doc:"Session length (s).")
  in
  let k_arg = Arg.(value & opt int 10 & info [ "k"; "s-period" ] ~doc:"S-period in intervals.") in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Write the faulty run's complete JSONL event journal to $(docv).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a session under a fault-injection plan (plus a fault-free baseline and a \
          byte-identical re-run), checking recovery, determinism and post-recovery DEK \
          convergence; nonzero exit on any failure")
    Term.(
      const run $ plan_arg $ org_arg $ n_arg $ tp_arg $ horizon_arg $ degree_arg $ k_arg
      $ seed_arg $ journal_arg $ keys_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

(* Shared by serve and join: "tcp" | "udp" | "udp:ADDR:PORT", yielding
   the multicast group for the UDP data plane (None = pure TCP). *)
let parse_transport s =
  if s = "tcp" then Ok None
  else if s = "udp" then Result.map Option.some (Gkm_netd.Mcast.group_of_string "")
  else if String.length s >= 4 && String.sub s 0 4 = "udp:" then
    Result.map Option.some
      (Gkm_netd.Mcast.group_of_string (String.sub s 4 (String.length s - 4)))
  else Error (Printf.sprintf "%S: expected tcp or udp[:ADDR:PORT]" s)

(* "P" (Bernoulli) or "bursty:P:B" (Gilbert-Elliott tuned to mean loss
   P with burstiness B); "" or "0" = no loss model. *)
let parse_udp_loss s =
  if s = "" then Ok None
  else
    match String.split_on_char ':' s with
    | [ p ] -> (
        match float_of_string_opt p with
        | Some 0.0 -> Ok None
        | Some p -> (
            match Gkm_net.Loss_model.bernoulli p with
            | m -> Ok (Some m)
            | exception Invalid_argument e -> Error e)
        | None -> Error (Printf.sprintf "%S: expected a probability or bursty:P:B" s))
    | [ "bursty"; p; b ] -> (
        match (float_of_string_opt p, float_of_string_opt b) with
        | Some mean_loss, Some burstiness -> (
            match Gkm_net.Loss_model.bursty ~mean_loss ~burstiness with
            | m -> Ok (Some m)
            | exception Invalid_argument e -> Error e)
        | _ -> Error (Printf.sprintf "%S: bad bursty:P:B numbers" s))
    | _ -> Error (Printf.sprintf "%S: expected a probability or bursty:P:B" s)

let transport_arg =
  Arg.(
    value & opt string "tcp"
    & info [ "transport" ] ~docv:"T"
        ~doc:
          "Rekey data plane: $(b,tcp) (unicast, default) or $(b,udp)[:ADDR:PORT] — sealed \
           rekey generations multicast to the group (default 239.255.77.7:7677) while TCP \
           remains the control channel. Server and clients must agree.")

let serve_cmd =
  let module Loop = Gkm_netd.Loop in
  let module Server = Gkm_netd.Server in
  let run host port org_sel tp capacity soft hard retx grace resync_budget strikes max_clients
      degree k ticket_horizon ticket_rewrap domains transport_s udp_loss udp_reorder udp_dup
      intervals duration journal_file port_file stats_file seed =
    let transport =
      match parse_transport transport_s with
      | Error e ->
          prerr_endline ("--transport: " ^ e);
          exit 2
      | Ok None ->
          if udp_loss <> "" || udp_reorder > 0.0 || udp_dup > 0.0 then begin
            prerr_endline "--udp-loss/--udp-reorder/--udp-dup apply to --transport udp only";
            exit 2
          end;
          Server.Tcp
      | Ok (Some group) -> (
          let loss =
            match parse_udp_loss udp_loss with
            | Ok l -> l
            | Error e ->
                prerr_endline ("--udp-loss: " ^ e);
                exit 2
          in
          match Gkm_net.Netem.cfg ?loss ~reorder:udp_reorder ~dup:udp_dup () with
          | fault -> Server.udp ~fault group
          | exception Invalid_argument e ->
              prerr_endline e;
              exit 2)
    in
    let spec =
      match Gkm.Organization.spec_of_string ~degree ~s_period:k ~seed:(seed + 1) org_sel with
      | Ok spec -> spec
      | Error e ->
          prerr_endline ("--org: " ^ e);
          exit 2
    in
    let oc =
      match journal_file with
      | None -> None
      | Some path ->
          Gkm_obs.Obs.set_enabled true;
          let oc = open_out path in
          Gkm_obs.Journal.attach_channel Gkm_obs.Journal.default oc;
          Some oc
    in
    let cfg =
      {
        Server.default_config with
        host;
        port;
        org = spec;
        tp;
        capacity;
        outbox_soft = soft;
        outbox_hard = hard;
        retx_window = retx;
        resync_grace = grace;
        resync_budget;
        stall_strikes = strikes;
        max_clients;
        ticket_horizon;
        ticket_rewrap;
        ticket_seed = seed + 2;
        domains;
        transport;
      }
    in
    let loop = Loop.create () in
    let srv =
      try Server.create ~loop cfg with
      | Invalid_argument e ->
          prerr_endline e;
          exit 2
      | Unix.Unix_error (err, _, _) ->
          Printf.eprintf "gkm serve: cannot listen on %s:%d: %s\n" host port
            (Unix.error_message err);
          exit 1
    in
    (* Written once the socket is bound: with --port 0 this is how a
       spawning process (gkm conform --interop) learns where to dial. *)
    (match port_file with
    | None -> ()
    | Some f ->
        let oc = open_out f in
        Printf.fprintf oc "%d\n" (Server.port srv);
        close_out oc);
    Printf.printf "gkm serve: %s organization on %s:%d, Tp=%gs%s%s (Ctrl-C to stop)\n%!"
      (Gkm.Organization.spec_name spec)
      host (Server.port srv) tp
      (if domains >= 2 then Printf.sprintf ", %d fan-out domains" domains else "")
      (match transport with
      | Server.Tcp -> ""
      | Server.Udp { group; _ } ->
          Printf.sprintf ", UDP data plane on %s" (Gkm_netd.Mcast.group_to_string group));
    let stop_flag = ref false in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop_flag := true))
     with Invalid_argument _ | Sys_error _ -> ());
    let t0 = Unix.gettimeofday () in
    Loop.run loop ~until:(fun () ->
        !stop_flag
        || (match intervals with Some n -> Server.rekey_no srv >= n | None -> false)
        || match duration with Some d -> Unix.gettimeofday () -. t0 >= d | None -> false);
    let st = Server.stats srv in
    Printf.printf "gkm serve: done — %d rekeys (%d packets), %d joins, %d leaves, %d members\n"
      st.rekeys st.rekey_packets st.joins st.leaves (Server.org_size srv);
    Printf.printf
      "  recovery: %d nacks, %d retx packets, %d resyncs (+%d migration unicasts); \
       backpressure: %d soft skips, %d slow + %d grace evictions; %d protocol errors\n"
      st.nacks st.retx_packets st.resyncs st.migrations st.soft_skips st.evictions_slow
      st.evictions_grace st.protocol_errors;
    Printf.printf "  tickets: %d issued (%d B); rejoins: %d 0-RTT + %d full, %d rejected\n"
      st.tickets_issued st.ticket_bytes st.rejoins_0rtt st.rejoins_full st.ticket_rejects;
    Printf.printf "  traffic: %d B out, %d B in\n" (Server.bytes_tx srv) (Server.bytes_rx srv);
    (match transport with
    | Server.Tcp -> ()
    | Server.Udp _ ->
        Printf.printf
          "  mcast: %d datagrams + %d heartbeats (%d B), %d generations fell back to \
           unicast\n"
          st.mcast_datagrams st.mcast_heartbeats st.mcast_bytes st.mcast_fallback_unicast);
    (* Machine-readable mirror of the summary above, for the interop
       harness's server-side assertions. *)
    (match stats_file with
    | None -> ()
    | Some f ->
        let module J = Gkm_obs.Jsonx in
        let oc = open_out f in
        output_string oc
          (J.obj
             [
               ("port", J.int (Server.port srv));
               ("org_size", J.int (Server.org_size srv));
               ("domains", J.int domains);
               ("accepts", J.int st.accepts);
               ("joins", J.int st.joins);
               ("leaves", J.int st.leaves);
               ("rekeys", J.int st.rekeys);
               ("rekey_packets", J.int st.rekey_packets);
               ("nacks", J.int st.nacks);
               ("retx_packets", J.int st.retx_packets);
               ("resyncs", J.int st.resyncs);
               ("resyncs_denied", J.int st.resyncs_denied);
               ("migrations", J.int st.migrations);
               ("soft_skips", J.int st.soft_skips);
               ("evictions_slow", J.int st.evictions_slow);
               ("evictions_grace", J.int st.evictions_grace);
               ("protocol_errors", J.int st.protocol_errors);
               ("tickets_issued", J.int st.tickets_issued);
               ("rejoins_0rtt", J.int st.rejoins_0rtt);
               ("rejoins_full", J.int st.rejoins_full);
               ("ticket_rejects", J.int st.ticket_rejects);
               ("bytes_tx", J.int (Server.bytes_tx srv));
               ("bytes_rx", J.int (Server.bytes_rx srv));
               ( "transport",
                 J.str (match transport with Server.Tcp -> "tcp" | Server.Udp _ -> "udp") );
               ("mcast_datagrams", J.int st.mcast_datagrams);
               ("mcast_bytes", J.int st.mcast_bytes);
               ("mcast_fallback_unicast", J.int st.mcast_fallback_unicast);
               ("mcast_heartbeats", J.int st.mcast_heartbeats);
             ]);
        output_char oc '\n';
        close_out oc);
    (if domains >= 2 then
       let tx = Server.tx_per_domain srv in
       Printf.printf "  tx by domain: tick %d B; shards %s\n" tx.(0)
         (String.concat ", "
            (List.tl (Array.to_list (Array.mapi (fun i b -> Printf.sprintf "#%d %d B" i b) tx)))));
    Server.stop srv;
    (match oc with
    | None -> ()
    | Some oc ->
        Gkm_obs.Journal.set_sink Gkm_obs.Journal.default None;
        close_out oc)
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_arg =
    Arg.(value & opt int 7600 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks one).")
  in
  let org_arg =
    Arg.(
      value & opt string "tt"
      & info [ "org" ] ~docv:"ORG"
          ~doc:
            "Group organization: $(b,one)|$(b,qt)|$(b,tt)|$(b,pt), $(b,loss:T1,..), \
             $(b,random:K), or $(b,composed). Composed organizations need wire v2 \
             clients (v1 hellos are refused).")
  in
  let tp_arg = Arg.(value & opt float 1.0 & info [ "tp" ] ~doc:"Rekey interval (s).") in
  let capacity_arg =
    Arg.(value & opt int 1024 & info [ "capacity" ] ~docv:"B" ~doc:"Rekey packet payload (bytes).")
  in
  let soft_arg =
    Arg.(
      value
      & opt int (256 * 1024)
      & info [ "outbox-soft" ] ~docv:"B" ~doc:"Backlog beyond which an interval is skipped.")
  in
  let hard_arg =
    Arg.(
      value
      & opt int (1024 * 1024)
      & info [ "outbox-hard" ] ~docv:"B" ~doc:"Backlog beyond which the client is evicted.")
  in
  let retx_arg =
    Arg.(value & opt int 8 & info [ "retx-window" ] ~doc:"Rekeys kept for retransmission.")
  in
  let grace_arg =
    Arg.(
      value & opt int 50
      & info [ "resync-grace" ] ~doc:"Rekeys a disconnected member stays registered.")
  in
  let resync_budget_arg =
    Arg.(
      value & opt int 64
      & info [ "resync-budget" ] ~docv:"N"
          ~doc:
            "Recovery resyncs served per connection before the client is dropped with a \
             protocol error (NACK-flood amplification brake).")
  in
  let strikes_arg =
    Arg.(
      value & opt int 8
      & info [ "stall-strikes" ] ~doc:"Consecutive skipped intervals before eviction.")
  in
  let max_clients_arg =
    Arg.(value & opt int 4096 & info [ "max-clients" ] ~doc:"Connection limit.")
  in
  let k_arg = Arg.(value & opt int 10 & info [ "k"; "s-period" ] ~doc:"S-period in intervals.") in
  let ticket_horizon_arg =
    Arg.(
      value & opt int 200
      & info [ "ticket-horizon" ] ~docv:"E"
          ~doc:"Max epochs between a ticket's issue and its REJOIN before it is refused.")
  in
  let ticket_rewrap_arg =
    Arg.(
      value & opt int 64
      & info [ "ticket-rewrap" ] ~docv:"E"
          ~doc:"Epochs between age-based ticket reissues to connected members.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"K"
          ~doc:
            "REKEY fan-out lanes. 1 is the single-threaded server; from 2 up, $(docv) \
             shard domains each own a disjoint set of member connections and flush the \
             encode-once rekey buffers in parallel, with backpressure applied shard-side. \
             Protocol logic stays on the tick thread either way.")
  in
  let intervals_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "intervals" ] ~docv:"N" ~doc:"Stop after $(docv) effective rekeys.")
  in
  let duration_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"S" ~doc:"Stop after $(docv) seconds.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Enable observability and stream the JSONL event journal to $(docv).")
  in
  let port_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound TCP port to $(docv) once listening — with $(b,--port 0) this \
             is how a spawning process learns where to dial.")
  in
  let stats_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-file" ] ~docv:"FILE"
          ~doc:"Write the final server statistics to $(docv) as one JSON object on exit.")
  in
  let udp_loss_arg =
    Arg.(
      value & opt string ""
      & info [ "udp-loss" ] ~docv:"P"
          ~doc:
            "Inject datagram loss on the multicast send path: a probability for Bernoulli \
             loss, or $(b,bursty:P:B) for a Gilbert-Elliott model with mean loss P and \
             burstiness B. Requires $(b,--transport udp).")
  in
  let udp_reorder_arg =
    Arg.(
      value & opt float 0.0
      & info [ "udp-reorder" ] ~docv:"P"
          ~doc:
            "Probability a multicast datagram is held back until the next survivor \
             (one-slot reorder). Requires $(b,--transport udp).")
  in
  let udp_dup_arg =
    Arg.(
      value & opt float 0.0
      & info [ "udp-dup" ] ~docv:"P"
          ~doc:
            "Probability a multicast datagram is sent twice. Requires \
             $(b,--transport udp).")
  in
  Cmd.v
    (Cmd.info "serve" ~exits:common_exits
       ~doc:
         "Serve a live group organization over a TCP socket: batched admissions, \
          optionally domain-sharded REKEY fan-out or a UDP multicast data plane, \
          NACK/RETX recovery, authenticated RESYNC, two-tier backpressure")
    Term.(
      const run $ host_arg $ port_arg $ org_arg $ tp_arg $ capacity_arg $ soft_arg $ hard_arg
      $ retx_arg $ grace_arg $ resync_budget_arg $ strikes_arg $ max_clients_arg $ degree_arg
      $ k_arg $ ticket_horizon_arg $ ticket_rewrap_arg $ domains_arg $ transport_arg
      $ udp_loss_arg $ udp_reorder_arg $ udp_dup_arg $ intervals_arg $ duration_arg
      $ journal_arg $ port_file_arg $ stats_file_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* join                                                                *)

let join_cmd =
  let module Loop = Gkm_netd.Loop in
  let module Client = Gkm_netd.Client in
  let run host port count cls loss drop rekeys duration verbose ticket_file ticket_out
      transport_s seed =
    let mcast =
      match parse_transport transport_s with
      | Ok g -> g
      | Error e ->
          prerr_endline ("--transport: " ^ e);
          exit 2
    in
    if count < 1 then begin
      prerr_endline "--count must be at least 1";
      exit 2
    end;
    if ticket_file <> None && count > 1 then begin
      prerr_endline "--ticket resumes one member: --count must be 1";
      exit 2
    end;
    let resume =
      match ticket_file with
      | None -> None
      | Some path ->
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let blob = really_input_string ic len in
          close_in ic;
          Some (Bytes.of_string blob)
    in
    let loop = Loop.create () in
    let mk i =
      Client.connect ~loop
        {
          (Client.config ~port) with
          host;
          cls;
          loss;
          seed = seed + i;
          resume = (if i = 0 then resume else None);
          drop = (if drop > 0.0 then Some (Gkm_net.Loss_model.bernoulli drop) else None);
          mcast;
        }
    in
    let clients = List.init count mk in
    if verbose then
      List.iteri
        (fun i c ->
          Client.on_dek c (fun ~rekey_no ~fp ->
              Printf.printf "client %d: rekey %d -> DEK %s\n%!" i rekey_no fp))
        clients;
    let stop_flag = ref false in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop_flag := true))
     with Invalid_argument _ | Sys_error _ -> ());
    let t0 = Unix.gettimeofday () in
    Loop.run loop ~until:(fun () ->
        !stop_flag
        || List.for_all
             (fun c ->
               Client.phase c = Client.Closed
               || match rekeys with Some n -> Client.rekeys_completed c >= n | None -> false)
             clients
        || match duration with Some d -> Unix.gettimeofday () -. t0 >= d | None -> false);
    (* With --ticket-out the member means to come back: save the
       resumption state and drop the connection without LEAVE (the
       server keeps the membership for resync_grace rekeys), so the
       saved ticket stays valid for a later `gkm join --ticket`. *)
    (match (ticket_out, clients) with
    | Some path, c :: _ -> (
        match Client.export_resumption c with
        | Some blob ->
            let oc = open_out_bin path in
            output_bytes oc blob;
            close_out oc;
            Client.kill c;
            Printf.printf "client 0: resumption state written to %s\n" path
        | None ->
            Printf.printf "client 0: no ticket to export (not admitted, or none issued yet)\n")
    | _ -> ());
    List.iter (fun c -> if Client.is_member c then Client.leave c) clients;
    let deadline = Unix.gettimeofday () +. 5.0 in
    Loop.run loop ~until:(fun () ->
        List.for_all (fun c -> Client.phase c = Client.Closed) clients
        || Unix.gettimeofday () > deadline);
    let failed = ref 0 in
    List.iteri
      (fun i c ->
        (match Client.last_error c with
        | Some e ->
            incr failed;
            Printf.printf "client %d: FAILED (%s)\n" i e
        | None ->
            let dek =
              match List.rev (Client.dek_trace c) with
              | (no, fp) :: _ -> Printf.sprintf "DEK %s at rekey %d" fp no
              | [] -> "no DEK observed"
            in
            Printf.printf
              "client %d: member %d, %d rekeys, %d rejoins, %d nacks, %d resyncs%s, %s\n" i
              (Client.member c) (Client.rekeys_completed c) (Client.rejoins c)
              (Client.nacks_sent c) (Client.resyncs c)
              (if mcast = None then ""
               else Printf.sprintf ", %d mcast datagrams" (Client.mcast_datagrams_rx c))
              dek);
        ignore i)
      clients;
    if !failed > 0 then exit 1
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_arg =
    Arg.(value & opt int 7600 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server TCP port.")
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N" ~doc:"Number of clients to run.")
  in
  let cls_arg =
    enum_arg
      ~names:[ ("short", `Short); ("long", `Long) ]
      ~default:`Long ~doc:"Duration class reported at join (short, long)." "class"
  in
  let loss_arg =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~doc:"Loss rate reported at join (placement signal).")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:"Simulate Bernoulli($(docv)) receive loss on REKEY frames to exercise \
                NACK/RETX recovery.")
  in
  let rekeys_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rekeys" ] ~docv:"N" ~doc:"Leave after completing $(docv) rekeys.")
  in
  let duration_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"S" ~doc:"Leave after $(docv) seconds.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every DEK change.")
  in
  let ticket_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "ticket" ] ~docv:"FILE"
          ~doc:
            "Resume from the resumption state in $(docv) (written by $(b,--ticket-out)): \
             rejoin as the saved member via a 0-RTT ticket REJOIN instead of joining \
             fresh. Implies $(b,--count) 1.")
  in
  let ticket_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ticket-out" ] ~docv:"FILE"
          ~doc:
            "On exit, write client 0's resumption state (member id, individual key and \
             current ticket) to $(docv) and disconnect WITHOUT leaving, so a later \
             $(b,gkm join --ticket) $(docv) can resume the membership. The file holds \
             the secret individual key — protect it accordingly.")
  in
  Cmd.v
    (Cmd.info "join" ~exits:common_exits
       ~doc:
         "Join one or more wire clients to a running $(b,gkm serve) instance and track the \
          group key until $(b,--rekeys)/$(b,--duration) or Ctrl-C")
    Term.(
      const run $ host_arg $ port_arg $ count_arg $ cls_arg $ loss_arg $ drop_arg
      $ rekeys_arg $ duration_arg $ verbose_arg $ ticket_arg $ ticket_out_arg
      $ transport_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* conform                                                             *)

let conform_cmd =
  let module Fuzzer = Gkm_conformance.Fuzzer in
  let module Corpus = Gkm_conformance.Corpus in
  let module Interop = Gkm_conformance.Interop in
  let module Soak = Gkm_conformance.Soak in
  let int_list ~flag s =
    List.map
      (fun part ->
        match int_of_string_opt (String.trim part) with
        | Some v when v > 0 -> v
        | _ ->
            Printf.eprintf "%s: '%s' is not a positive integer list\n" flag s;
            exit 2)
      (String.split_on_char ',' s)
  in
  let str_list s = List.map String.trim (String.split_on_char ',' s) in
  let run fuzz interop soak frames fuzz_seconds corpus_file crashers_out scratch
      domains_str orgs_str org n tp intervals budget jsonl_file seed =
    if not (fuzz || interop || soak) then begin
      prerr_endline "gkm conform: pick at least one of --fuzz, --interop, --soak";
      exit 2
    end;
    let failed = ref false in
    (if fuzz then begin
       let corpus =
         match corpus_file with
         | None -> []
         | Some path -> (
             match Corpus.load path with
             | Ok entries -> entries
             | Error e ->
                 prerr_endline ("--corpus: " ^ e);
                 exit 2)
       in
       Printf.printf "conform fuzz: %d frames, seed %d, %d corpus entries\n%!" frames
         seed (List.length corpus);
       let progress r =
         Printf.printf "  %d/%d frames, %d accepted, %d failures (%.1fs)\n%!"
           r.Fuzzer.generated frames r.Fuzzer.accepted
           (List.length r.Fuzzer.failures)
           r.Fuzzer.elapsed_s
       in
       let r =
         Fuzzer.run ~seed ~frames ?max_seconds:fuzz_seconds ~corpus ?crashers_out
           ~progress ()
       in
       Format.printf "%a@." Fuzzer.pp_report r;
       if r.Fuzzer.failures <> [] then begin
         failed := true;
         match crashers_out with
         | Some path ->
             Printf.printf "conform fuzz: minimized crashers appended to %s\n%!" path
         | None -> ()
       end
     end);
    (if interop then begin
       let domains_list = int_list ~flag:"--domains" domains_str in
       let orgs = str_list orgs_str in
       Printf.printf "conform interop: orgs [%s] x domains [%s]\n%!"
         (String.concat "; " orgs) domains_str;
       let cases =
         Interop.sweep ~scratch ~domains_list ~orgs ~exe:Sys.executable_name ~seed ()
       in
       List.iter (fun c -> Format.printf "%a%!" Interop.pp_case c) cases;
       if List.exists (fun (c : Interop.case_result) -> not c.ok) cases then
         failed := true
     end);
    (if soak then begin
       let cfg =
         { Soak.default with org; n; tp; intervals; budget; seed }
       in
       let oc =
         match jsonl_file with None -> None | Some path -> Some (open_out path)
       in
       let emit line =
         print_endline line;
         match oc with
         | Some oc ->
             output_string oc line;
             output_char oc '\n';
             flush oc
         | None -> ()
       in
       Printf.printf "conform soak: org=%s N=%d, %d intervals/iter, %.0fs budget\n%!"
         org n intervals budget;
       let r = try Soak.run ~emit cfg with
         | Invalid_argument e ->
             prerr_endline e;
             exit 2
       in
       (match oc with Some oc -> close_out oc | None -> ());
       Printf.printf "conform soak: %d iterations in %.1fs: %s\n%!"
         (List.length r.Soak.iterations)
         r.Soak.elapsed
         (if r.Soak.ok then "ok" else "FAIL");
       if not r.Soak.ok then failed := true
     end);
    if !failed then exit 1
  in
  let fuzz_arg =
    Arg.(value & flag & info [ "fuzz" ] ~doc:"Run the grammar-aware decoder fuzz lane.")
  in
  let interop_arg =
    Arg.(
      value & flag
      & info [ "interop" ]
          ~doc:
            "Run the multi-process interop lane: spawn real $(b,gkm serve) instances \
             and drive heterogeneous client cohorts against them.")
  in
  let soak_arg =
    Arg.(
      value & flag
      & info [ "soak" ]
          ~doc:
            "Run the chaos soak lane: repeated faulted sessions at the big \
             configuration until the wall-clock budget expires.")
  in
  let frames_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "frames" ] ~docv:"N" ~doc:"Fuzz generation budget (frames).")
  in
  let fuzz_seconds_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "fuzz-seconds" ] ~docv:"S" ~doc:"Stop fuzzing early after $(docv) seconds.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Crasher corpus to replay before generating (test/wire/fuzz_corpus.txt).")
  in
  let crashers_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "crashers-out" ] ~docv:"FILE"
          ~doc:"Append minimized crashers to $(docv) in corpus format for check-in.")
  in
  let scratch_arg =
    Arg.(
      value & opt string "."
      & info [ "scratch" ] ~docv:"DIR"
          ~doc:"Directory for the interop lane's port/stats scratch files.")
  in
  let domains_arg =
    Arg.(
      value & opt string "1,2,4"
      & info [ "domains" ] ~docv:"K,.."
          ~doc:"Comma-separated $(b,--domains) values to sweep in the interop lane.")
  in
  let orgs_arg =
    Arg.(
      value & opt string "tt,composed"
      & info [ "orgs" ] ~docv:"ORG,.."
          ~doc:"Comma-separated organization selectors to sweep in the interop lane.")
  in
  let org_arg =
    Arg.(
      value & opt string "composed"
      & info [ "org" ] ~docv:"ORG" ~doc:"Organization for the soak lane.")
  in
  let n_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "n"; "group-size" ] ~docv:"N" ~doc:"Soak steady-state group size.")
  in
  let tp_arg =
    Arg.(value & opt float 60.0 & info [ "tp" ] ~doc:"Soak rekey interval (simulated s).")
  in
  let intervals_arg =
    Arg.(
      value & opt int 10
      & info [ "intervals" ] ~docv:"I" ~doc:"Simulated rekey intervals per soak iteration.")
  in
  let budget_arg =
    Arg.(
      value & opt float 600.0
      & info [ "budget" ] ~docv:"S" ~doc:"Soak wall-clock budget (seconds).")
  in
  let jsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Also write the soak verdict JSONL stream to $(docv).")
  in
  Cmd.v
    (Cmd.info "conform" ~exits:common_exits
       ~doc:
         "Conformance lanes: grammar-aware wire fuzzing ($(b,--fuzz)), multi-process \
          interop against real $(b,gkm serve) instances ($(b,--interop)), and the \
          chaos soak at the big configuration ($(b,--soak)). Exits 0 when every \
          selected lane passes, 1 on any failed verdict, 2 on invalid configuration.")
    Term.(
      const run $ fuzz_arg $ interop_arg $ soak_arg $ frames_arg $ fuzz_seconds_arg
      $ corpus_arg $ crashers_arg $ scratch_arg $ domains_arg $ orgs_arg $ org_arg
      $ n_arg $ tp_arg $ intervals_arg $ budget_arg $ jsonl_arg $ seed_arg)

(* ------------------------------------------------------------------ *)

(* The single source of truth for the sub-command set: the group, the
   COMMANDS overview table and the manual all derive from here. *)
let command_table =
  [
    (partition_cmd, "two-partition rekeying costs, analytic and simulated (Section 3)");
    (loss_cmd, "loss-homogenized key-tree organizations (Section 4)");
    (trace_cmd, "generate and fit two-class membership traces");
    (ne_cmd, "Appendix A batched-rekeying cost model Ne(N, L)");
    (session_cmd, "full engine-driven session under any organization");
    (metrics_cmd, "session with the observability registry and journal dumped");
    (chaos_cmd, "session under a fault plan: recovery, determinism, convergence");
    (serve_cmd, "real rekey server on a TCP socket");
    (join_cmd, "wire clients against a running server");
    (conform_cmd, "conformance lanes: wire fuzzing, interop cohorts, chaos soak");
  ]

let man =
  [
    `S Manpage.s_description;
    `P
      "Reproduction of the ICDCS 2003 group-key-management performance optimizations: \
       two-partition rekeying, loss-homogenized key trees, reliable rekey transports — and \
       a real wire protocol serving them over TCP.";
    `S "COMMAND OVERVIEW";
    `Pre
      (String.concat "\n"
         (List.map
            (fun (c, summary) -> Printf.sprintf "  %-10s %s" (Cmd.name c) summary)
            command_table));
  ]

let cmd =
  Cmd.group
    (Cmd.info "gkm" ~version:"1.0.0" ~exits:common_exits ~man
       ~doc:"Group key management for secure multicast: LKH, two-partition and loss-homogenized \
             key trees, reliable rekey transports")
    (List.map fst command_table)

let () = exit (Cmd.eval cmd)
