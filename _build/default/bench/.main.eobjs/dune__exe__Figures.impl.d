bench/figures.ml: Gkm Gkm_analytic Gkm_lkh List Loss_homogenized Params Printf Proactive_fec Probabilistic Two_partition Wka_bkr
