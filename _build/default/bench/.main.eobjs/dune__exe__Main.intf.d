bench/main.mli:
