bench/main.ml: Arg Cmd Cmdliner Figures List Micro Printf String Term
