(* Regeneration of every table and figure in the paper's evaluation.
   Analytic figures reproduce the paper's model exactly; the sim-*
   experiments cross-check them against the executable system at a
   reduced (laptop-scale) group size. Paper reference points are
   printed in each header so the output can be compared at a glance
   (see EXPERIMENTS.md). *)

open Gkm_analytic

let line fmt = Printf.printf (fmt ^^ "\n%!")

let header title =
  line "";
  line "================================================================";
  line "%s" title;
  line "================================================================"

(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: default parameters for the two-partition evaluation";
  let p = Params.default in
  line "  Rekeying period Tp            %g s" p.tp;
  line "  Group size N                  %d" p.n;
  line "  Degree of a keytree d         %d" p.d;
  line "  K = Ts/Tp                     %d" p.k;
  line "  Small mean Ms                 %g s (3 minutes)" p.ms;
  line "  Large mean Ml                 %g s (3 hours)" p.ml;
  line "  Fraction of class Cs alpha    %g" p.alpha;
  let dv = Two_partition.derive p in
  line "  (derived) J per interval      %.1f" dv.j;
  line "  (derived) S-partition size Ns %.1f" dv.ns;
  line "  (derived) migrations Lm       %.1f" dv.lm

let cost p s = Two_partition.cost p s

let fig3 () =
  header
    "Fig. 3: rekeying cost vs S-period K (defaults; paper: one-keytree ~1.65e4,\n\
     TT up to ~25% below it at K=10, QT best near K=5-10, PT flat lowest)";
  line "%4s %12s %12s %12s %12s" "K" "one-keytree" "TT-scheme" "QT-scheme" "PT-scheme";
  let p = Params.default in
  for k = 0 to 20 do
    let p = { p with k } in
    line "%4d %12.0f %12.0f %12.0f %12.0f" k (cost p One_keytree) (cost p Tt) (cost p Qt)
      (cost p Pt)
  done

let fig4 () =
  header
    "Fig. 4: rekeying cost vs fraction of short-class members alpha (K=10;\n\
     paper: TT/QT win for alpha > 0.6, peak saving ~31.4% at alpha = 0.9)";
  line "%6s %12s %12s %12s %12s %9s %9s" "alpha" "one-keytree" "TT-scheme" "QT-scheme"
    "PT-scheme" "red(TT)" "red(QT)";
  let p = Params.default in
  List.iter
    (fun alpha ->
      let p = { p with alpha } in
      line "%6.2f %12.0f %12.0f %12.0f %12.0f %8.1f%% %8.1f%%" alpha (cost p One_keytree)
        (cost p Tt) (cost p Qt) (cost p Pt)
        (100.0 *. Two_partition.reduction p Tt)
        (100.0 *. Two_partition.reduction p Qt))
    (List.init 21 (fun i -> float_of_int i /. 20.0))

let fig5 () =
  header
    "Fig. 5: relative rekeying-cost reduction vs group size N (defaults;\n\
     paper: >22% savings on average, insensitive to N across 1K..256K)";
  line "%8s %12s %12s" "N" "QT saving" "TT saving";
  let p = Params.default in
  List.iter
    (fun n ->
      let p = { p with n } in
      line "%8d %11.1f%% %11.1f%%" n
        (100.0 *. Two_partition.reduction p Qt)
        (100.0 *. Two_partition.reduction p Tt))
    [ 1024; 4096; 16384; 65536; 262144 ]

let fig6 () =
  header
    "Fig. 6: WKA-BKR rekey bandwidth vs fraction of high-loss receivers\n\
     (N=65536, L=256, d=4, ph=0.2, pl=0.02; paper: loss-homogenized up to\n\
     12.1% below one-keytree near alpha=0.3; two-random slightly worse)";
  line "%6s %13s %13s %13s %9s" "alpha" "one-keytree" "two-random" "loss-homog" "saving";
  let c = Loss_homogenized.default in
  List.iter
    (fun alpha ->
      line "%6.2f %13.0f %13.0f %13.0f %8.1f%%" alpha
        (Loss_homogenized.one_keytree c ~alpha)
        (Loss_homogenized.two_random c ~alpha)
        (Loss_homogenized.loss_homogenized c ~alpha)
        (100.0 *. Loss_homogenized.reduction c ~alpha))
    (List.init 21 (fun i -> float_of_int i /. 20.0))

let fig7 () =
  header
    "Fig. 7: impact of misplaced receivers (alpha=0.2, ph=0.2, pl=0.02;\n\
     paper: small beta still wins, beta=0.8 about breaks even with one\n\
     keytree, beta=1.0 dips back below beta=0.8)";
  let c = Loss_homogenized.default in
  let one = Loss_homogenized.one_keytree c ~alpha:0.2 in
  let correct = Loss_homogenized.loss_homogenized c ~alpha:0.2 in
  line "%6s %15s %15s %15s" "beta" "mis-partitioned" "correct" "one-keytree";
  List.iter
    (fun beta ->
      line "%6.2f %15.0f %15.0f %15.0f" beta
        (Loss_homogenized.mispartitioned c ~alpha:0.2 ~beta)
        correct one)
    (List.init 11 (fun i -> float_of_int i /. 10.0))

let sec44 () =
  header
    "Section 4.4: loss-homogenization under the proactive-FEC transport\n\
     (paper: gain more significant than under WKA-BKR, up to 25.7% at\n\
     ph=0.2, pl=0.02, alpha=0.1)";
  line "%6s %13s %13s %9s" "alpha" "one-keytree" "loss-homog" "saving";
  let c = Loss_homogenized.default in
  let fc = Proactive_fec.default in
  List.iter
    (fun alpha ->
      line "%6.2f %13.0f %13.0f %8.1f%%" alpha
        (Proactive_fec.one_keytree fc c ~alpha)
        (Proactive_fec.loss_homogenized fc c ~alpha)
        (100.0 *. Proactive_fec.reduction fc c ~alpha))
    [ 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5 ]

(* ------------------------------------------------------------------ *)
(* Simulation cross-checks (scaled-down N; the executable system)      *)

let sim_partition () =
  header
    "X1: discrete simulation of Figs. 3/4 (executable schemes, real key\n\
     wrapping, two-class churn; N scaled to 2048, 40 measured intervals).\n\
     'analytic' columns evaluate the paper's model at the same N";
  let n = 2048 and ms = 180.0 and ml = 10800.0 and tp = 60.0 and k = 10 in
  line "%6s %14s %10s %10s %10s" "alpha" "scheme" "sim keys" "analytic" "sim size";
  List.iter
    (fun alpha ->
      List.iter
        (fun kind ->
          let r =
            Gkm.Sim_driver.run_partition ~seed:42 ~n ~alpha ~ms ~ml ~tp ~s_period:k ~warmup:10
              ~intervals:40 ~kind ()
          in
          let scheme =
            match kind with
            | Gkm.Scheme.One_keytree -> Two_partition.One_keytree
            | Qt -> Two_partition.Qt
            | Tt -> Two_partition.Tt
            | Pt -> Two_partition.Pt
          in
          let analytic =
            Two_partition.cost { Params.default with n; alpha; ms; ml; tp; k } scheme
          in
          line "%6.2f %14s %10.1f %10.1f %10.0f" alpha (Gkm.Scheme.kind_name kind) r.mean_keys
            analytic r.mean_size)
        Gkm.Scheme.all_kinds;
      line "")
    [ 0.4; 0.8; 0.9 ]

let sim_loss () =
  header
    "X2: simulated WKA-BKR delivery of one batched rekeying over a lossy\n\
     multicast channel (N scaled to 2048, L=64, ph=0.2, pl=0.02, 3 trials)";
  line "%6s %18s %12s %10s %8s" "alpha" "organization" "keys sent" "packets" "rounds";
  let run alpha organization name =
    let r =
      Gkm.Sim_driver.run_loss ~seed:42 ~trials:3 ~n:2048 ~l:64 ~alpha ~ph:0.2 ~pl:0.02
        ~organization ~transport:Gkm.Sim_driver.Wka_bkr_transport ()
    in
    line "%6.2f %18s %12.0f %10.0f %8.1f" alpha name r.mean_keys_sent r.mean_packets
      r.mean_rounds
  in
  List.iter
    (fun alpha ->
      run alpha Gkm.Sim_driver.Org_one "one-keytree";
      run alpha (Gkm.Sim_driver.Org_random 2) "two-random";
      run alpha (Gkm.Sim_driver.Org_homogenized 0.05) "loss-homogenized";
      line "")
    [ 0.1; 0.3; 0.5 ]

let sim_fec () =
  header
    "X3: simulated proactive-FEC delivery with real RS parity accounting\n\
     (N=1024, L=48, ph=0.2, pl=0.02; bandwidth counts parity packets)";
  line "%6s %18s %12s %12s" "alpha" "organization" "bandwidth" "rounds";
  let run alpha organization name =
    let r =
      Gkm.Sim_driver.run_loss ~seed:42 ~trials:3 ~n:1024 ~l:48 ~alpha ~ph:0.2 ~pl:0.02
        ~organization ~transport:(Gkm.Sim_driver.Fec_transport 0.25) ()
    in
    line "%6.2f %18s %12.0f %12.1f" alpha name r.mean_bandwidth r.mean_rounds
  in
  List.iter
    (fun alpha ->
      run alpha Gkm.Sim_driver.Org_one "one-keytree";
      run alpha (Gkm.Sim_driver.Org_homogenized 0.05) "loss-homogenized";
      line "")
    [ 0.1; 0.3 ]

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper (DESIGN.md Section 5)                     *)

let ablation_bands () =
  header
    "Ablation A1: number of loss bands (k-band generalization; 3-class\n\
     population 20%@0.2 / 30%@0.05 / 50%@0.01, N=65536, L=256)";
  let c = Loss_homogenized.default in
  let rates = [ (0.2, 0.2); (0.3, 0.05); (0.5, 0.01) ] in
  let mixed =
    Wka_bkr.forest_cost ~d:c.d
      [ { size = c.n; departures = c.l; composition = List.map (fun (f, p) -> (f, p)) rates } ]
  in
  line "  1 tree (mixed)                %10.0f keys" mixed;
  let two =
    Loss_homogenized.k_band c ~rates:[ (0.2, 0.2); (0.8, (0.3 *. 0.05 +. 0.5 *. 0.01) /. 0.8) ]
  in
  line "  2 bands (high vs rest)        %10.0f keys" two;
  let three = Loss_homogenized.k_band c ~rates in
  line "  3 bands (exact)               %10.0f keys" three;
  line "  saving 1->3 bands             %9.1f%%" (100.0 *. (1.0 -. (three /. mixed)))

let ablation_bursty () =
  header
    "Ablation A2: sensitivity of the loss-homogenized gain to bursty\n\
     (Gilbert-Elliott) loss instead of Bernoulli at the same mean loss\n\
     (simulated, N=1024, L=48, alpha=0.3, ph=0.2, pl=0.02)";
  line "%12s %18s %12s %9s" "loss model" "organization" "keys sent" "saving";
  let orgs =
    [ ("one-keytree", Gkm.Sim_driver.Org_one); ("loss-homog", Gkm.Sim_driver.Org_homogenized 0.05) ]
  in
  List.iter
    (fun (model_name, burstiness) ->
      let cost organization =
        let r =
          Gkm.Sim_driver.run_loss ~seed:7 ~trials:3 ?burstiness ~n:1024 ~l:48 ~alpha:0.3
            ~ph:0.2 ~pl:0.02 ~organization ~transport:Gkm.Sim_driver.Wka_bkr_transport ()
        in
        r.mean_keys_sent
      in
      let base = cost (snd (List.hd orgs)) in
      List.iter
        (fun (name, organization) ->
          let keys = cost organization in
          line "%12s %18s %12.0f %8.1f%%" model_name name keys
            (100.0 *. (1.0 -. (keys /. base))))
        orgs)
    [ ("bernoulli", None); ("bursty-0.7", Some 0.7); ("bursty-0.9", Some 0.9) ]

let ablation_adaptive_k () =
  header
    "Ablation A3: adaptive S-period selection (Section 3.4): best K per\n\
     alpha under the analytic model (TT-scheme, defaults otherwise)";
  line "%6s %8s %12s %12s %9s" "alpha" "best K" "cost@bestK" "cost@K=10" "extra@10";
  List.iter
    (fun alpha ->
      let p = { Params.default with alpha } in
      let k, best = Two_partition.best_k p Two_partition.Tt ~k_max:30 in
      let at10 = Two_partition.cost { p with k = 10 } Two_partition.Tt in
      line "%6.2f %8d %12.0f %12.0f %8.1f%%" alpha k best at10
        (100.0 *. ((at10 /. best) -. 1.0)))
    [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ]

let ablation_oft () =
  header
    "Ablation A4: LKH vs one-way function trees (OFT) [BM00] — multicast\n\
     cost of a single departure vs group size (binary trees; OFT sends\n\
     ~log2 N blinded values where binary LKH sends ~2 log2 N keys)";
  line "%8s %14s %14s %10s" "N" "LKH (d=2)" "OFT" "ratio";
  List.iter
    (fun n ->
      let oft = Gkm_lkh.Oft.create ~seed:1 () in
      for m = 1 to n do
        Gkm_lkh.Oft.join oft m
      done;
      let lkh = Gkm_lkh.Server.create ~seed:1 ~degree:2 () in
      for m = 1 to n do
        ignore (Gkm_lkh.Server.register lkh m)
      done;
      ignore (Gkm_lkh.Server.rekey lkh);
      let victims = List.init 8 (fun i -> 1 + (i * (n / 8))) in
      let oft_cost = ref 0 and lkh_cost = ref 0 in
      List.iter
        (fun m ->
          Gkm_lkh.Oft.leave oft m;
          oft_cost := !oft_cost + Gkm_lkh.Oft.last_broadcast_cost oft;
          lkh_cost := !lkh_cost + Gkm_lkh.Rekey_msg.size_keys (Gkm_lkh.Server.depart_now lkh m))
        victims;
      let oft_avg = float_of_int !oft_cost /. 8.0 and lkh_avg = float_of_int !lkh_cost /. 8.0 in
      line "%8d %14.1f %14.1f %10.2f" n lkh_avg oft_avg (oft_avg /. lkh_avg))
    [ 64; 256; 1024; 4096 ]

let ablation_probabilistic () =
  header
    "Ablation A5: probabilistic depth placement [SMS00] vs two-partition\n\
     (individual-rekeying regime: Huffman-style depths for the two\n\
     classes vs a balanced tree; compare with the PT oracle's batched\n\
     gain from Fig. 4)";
  line "%6s %10s %10s %12s %12s" "alpha" "ds" "dl" "saving(A5)" "PT saving";
  List.iter
    (fun alpha ->
      let p = { Params.default with alpha } in
      let ds, dl = Probabilistic.optimal_depths p in
      line "%6.2f %10.2f %10.2f %11.1f%% %11.1f%%" alpha ds dl
        (100.0 *. Probabilistic.reduction p)
        (100.0 *. Two_partition.reduction p Two_partition.Pt))
    [ 0.1; 0.3; 0.5; 0.7; 0.8; 0.9 ]

let all_analytic () =
  table1 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  sec44 ()

let all_sim () =
  sim_partition ();
  sim_loss ();
  sim_fec ()

let all_ablations () =
  ablation_bands ();
  ablation_bursty ();
  ablation_adaptive_k ();
  ablation_oft ();
  ablation_probabilistic ()

let by_name =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("sec44", sec44);
    ("sim-partition", sim_partition);
    ("sim-loss", sim_loss);
    ("sim-fec", sim_fec);
    ("ablation-bands", ablation_bands);
    ("ablation-bursty", ablation_bursty);
    ("ablation-adaptive-k", ablation_adaptive_k);
    ("ablation-oft", ablation_oft);
    ("ablation-probabilistic", ablation_probabilistic);
  ]
