(** Numeric helpers shared by the analytic models.

    The paper's formulas involve binomial coefficients over group
    sizes up to 2{^18} and continuous relaxations of member counts, so
    everything here works on floats via the log-gamma function. *)

val lgamma : float -> float
(** [lgamma x] is ln(Gamma(x)) for [x > 0] (Lanczos approximation,
    accurate to ~1e-13 relative). *)

val ln_factorial : float -> float
(** [ln_factorial n] is ln(n!) = lgamma(n + 1). *)

val ln_choose : float -> float -> float
(** [ln_choose n k] is ln(C(n, k)) with the conventions
    [ln_choose n 0 = 0] and [neg_infinity] when [k > n] or [k < 0].
    Continuous in both arguments. *)

val choose_ratio : total:float -> excluded:float -> draws:float -> float
(** [choose_ratio ~total ~excluded ~draws] is
    [C(total - excluded, draws) / C(total, draws)] — the probability
    that none of [draws] uniform draws without replacement from
    [total] items hits a designated set of [excluded] items. Returns
    0 when [draws > total - excluded]. This is the complement of
    formula (11) in the paper. *)

val log2 : float -> float
val logd : d:int -> float -> float
(** [logd ~d x] is log base [d] of [x]. *)
