(** Imperative binary min-heap, the priority queue behind the
    discrete-event {!Engine}. *)

type 'a t
(** A min-heap of elements ordered by a fixed comparison. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element, if any. O(1). *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. O(log n). *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains the heap in ascending order
    (destructive; mainly for tests). *)
