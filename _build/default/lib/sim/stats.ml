type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations *)
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.min_v
let max_value t = if t.n = 0 then nan else t.max_v

let ci95_halfwidth t =
  if t.n < 2 then nan else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      sum = a.sum +. b.sum;
      min_v = min a.min_v b.min_v;
      max_v = max a.max_v b.max_v;
    }
  end

let pp fmt t =
  if t.n = 0 then Format.fprintf fmt "(empty)"
  else
    Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
      (if t.n < 2 then 0.0 else stddev t)
      t.min_v t.max_v

module Sample = struct
  type t = { mutable data : float array; mutable n : int; mutable sorted : bool }

  let create () = { data = [||]; n = 0; sorted = true }

  let add t x =
    if t.n = Array.length t.data then begin
      let ndata = Array.make (max 16 (2 * t.n)) 0.0 in
      Array.blit t.data 0 ndata 0 t.n;
      t.data <- ndata
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.n in
      Array.sort compare live;
      Array.blit live 0 t.data 0 t.n;
      t.sorted <- true
    end

  let quantile t q =
    if t.n = 0 then invalid_arg "Stats.Sample.quantile: empty sample";
    if q < 0.0 || q > 1.0 then invalid_arg "Stats.Sample.quantile: q outside [0, 1]";
    ensure_sorted t;
    let pos = q *. float_of_int (t.n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    if lo = hi then t.data.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
    end

  let median t = quantile t 0.5
end
