lib/sim/mathx.mli:
