lib/sim/engine.mli:
