lib/sim/heap.mli:
