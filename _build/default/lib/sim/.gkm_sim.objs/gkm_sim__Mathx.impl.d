lib/sim/mathx.ml: Array Float
