(** Streaming statistics accumulators for simulation metrics. *)

type t
(** Accumulates count, mean, variance (Welford), min and max. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] if fewer than 2 observations. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val ci95_halfwidth : t -> float
(** Half-width of a normal-approximation 95% confidence interval for
    the mean; [nan] if fewer than 2 observations. *)

val merge : t -> t -> t
(** [merge a b] combines two accumulators (parallel Welford). *)

val pp : Format.formatter -> t -> unit

(** Reservoir of raw observations for quantile queries. *)
module Sample : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val quantile : t -> float -> float
  (** [quantile s q] for [q] in [0, 1], linear interpolation between
      order statistics.
      @raise Invalid_argument if empty or [q] outside [0, 1]. *)

  val median : t -> float
end
