(* Lanczos approximation with g = 7, n = 9 coefficients (Boost /
   Numerical Recipes parameterization). *)

let lanczos_g = 7.0

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec lgamma x =
  if x <= 0.0 then invalid_arg "Mathx.lgamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. lgamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let ln_factorial n = lgamma (n +. 1.0)

let ln_choose n k =
  if k < 0.0 || k > n then neg_infinity
  else if k = 0.0 || k = n then 0.0
  else ln_factorial n -. ln_factorial k -. ln_factorial (n -. k)

let choose_ratio ~total ~excluded ~draws =
  if draws <= 0.0 then 1.0
  else if excluded <= 0.0 then 1.0
  else if draws > total -. excluded then 0.0
  else exp (ln_choose (total -. excluded) draws -. ln_choose total draws)

let log2 x = log x /. log 2.0
let logd ~d x = log x /. log (float_of_int d)
