(** Per-receiver packet-loss models.

    The paper's analysis assumes independent Bernoulli loss per
    receiver [SZJ02, Appendix B]; the Gilbert-Elliott model adds
    bursty loss for the robustness experiments (DESIGN.md ablation:
    sensitivity of the loss-homogenized gain to loss-model
    assumptions). *)

type t =
  | Bernoulli of float  (** i.i.d. loss with the given probability *)
  | Gilbert_elliott of {
      p_gb : float;  (** transition probability good -> bad, per packet *)
      p_bg : float;  (** transition probability bad -> good, per packet *)
      loss_good : float;  (** loss probability in the good state *)
      loss_bad : float;  (** loss probability in the bad state *)
    }

val bernoulli : float -> t
(** @raise Invalid_argument unless the rate is in [0, 1]. *)

val gilbert_elliott :
  p_gb:float -> p_bg:float -> loss_good:float -> loss_bad:float -> t
(** @raise Invalid_argument on out-of-range probabilities. *)

val bursty : mean_loss:float -> burstiness:float -> t
(** [bursty ~mean_loss ~burstiness] is a Gilbert-Elliott model tuned to
    the given stationary loss rate; [burstiness] in (0, 1) scales the
    expected burst length (higher = longer bursts). Loss is 0 in the
    good state and 1 in the bad state.
    @raise Invalid_argument on out-of-range arguments. *)

val mean_loss : t -> float
(** Stationary packet-loss probability. *)

type state
(** Mutable per-receiver channel state. *)

val init_state : t -> state
val reset : t -> state -> unit

val drop : t -> state -> Gkm_crypto.Prng.t -> bool
(** [drop model state rng] samples whether the next packet is lost,
    advancing [state]. *)
