lib/net/loss_model.ml: Float Gkm_crypto Printf
