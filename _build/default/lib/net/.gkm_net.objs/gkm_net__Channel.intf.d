lib/net/channel.mli: Gkm_crypto Loss_model
