lib/net/channel.ml: Array Float Fun Gkm_crypto Hashtbl List Loss_model Printf
