lib/net/loss_model.mli: Gkm_crypto
