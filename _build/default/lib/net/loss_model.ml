module Prng = Gkm_crypto.Prng

type t =
  | Bernoulli of float
  | Gilbert_elliott of { p_gb : float; p_bg : float; loss_good : float; loss_bad : float }

let check_prob name p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg (Printf.sprintf "Loss_model: %s = %g outside [0, 1]" name p)

let bernoulli p =
  check_prob "rate" p;
  Bernoulli p

let gilbert_elliott ~p_gb ~p_bg ~loss_good ~loss_bad =
  check_prob "p_gb" p_gb;
  check_prob "p_bg" p_bg;
  check_prob "loss_good" loss_good;
  check_prob "loss_bad" loss_bad;
  Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad }

let bursty ~mean_loss ~burstiness =
  check_prob "mean_loss" mean_loss;
  if burstiness <= 0.0 || burstiness >= 1.0 then
    invalid_arg "Loss_model.bursty: burstiness must be in (0, 1)";
  if mean_loss = 0.0 then Bernoulli 0.0
  else if mean_loss = 1.0 then Bernoulli 1.0
  else begin
    (* Expected burst length 1 / p_bg; stationary bad fraction
       p_gb / (p_gb + p_bg) = mean_loss. *)
    let p_bg = 1.0 -. burstiness in
    let p_gb = mean_loss *. p_bg /. (1.0 -. mean_loss) in
    Gilbert_elliott { p_gb = min 1.0 p_gb; p_bg; loss_good = 0.0; loss_bad = 1.0 }
  end

let mean_loss = function
  | Bernoulli p -> p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      if p_gb = 0.0 && p_bg = 0.0 then loss_good
      else begin
        let bad_fraction = p_gb /. (p_gb +. p_bg) in
        (loss_bad *. bad_fraction) +. (loss_good *. (1.0 -. bad_fraction))
      end

type state = { mutable in_bad : bool }

let init_state = function
  | Bernoulli _ -> { in_bad = false }
  | Gilbert_elliott _ -> { in_bad = false }

let reset _model state = state.in_bad <- false

let drop model state rng =
  match model with
  | Bernoulli p -> Prng.bernoulli rng p
  | Gilbert_elliott { p_gb; p_bg; loss_good; loss_bad } ->
      (* Advance the chain, then sample loss in the new state. *)
      if state.in_bad then begin
        if Prng.bernoulli rng p_bg then state.in_bad <- false
      end
      else if Prng.bernoulli rng p_gb then state.in_bad <- true;
      Prng.bernoulli rng (if state.in_bad then loss_bad else loss_good)
