let check_args ~d ~n ~l =
  if d < 2 then invalid_arg "Batch_cost: degree must be >= 2";
  if Float.is_nan n || Float.is_nan l || n < 0.0 || l < 0.0 then
    invalid_arg "Batch_cost: n and l must be non-negative"

(* Split [s] leaves into at most [d] maximally even parts. *)
let child_sizes ~d s =
  let nchild = min d s in
  let q = s / nchild and r = s mod nchild in
  List.init nchild (fun i -> if i < r then q + 1 else q)

let expected_keys_int ~d ~n ~l =
  check_args ~d ~n:(float_of_int n) ~l:(float_of_int l);
  let l = min l n in
  if n <= 1 || l <= 0 then 0.0
  else begin
    let nf = float_of_int n and lf = float_of_int l in
    let p_update s =
      1.0 -. Gkm_sim.Mathx.choose_ratio ~total:nf ~excluded:(float_of_int s) ~draws:lf
    in
    (* Subtree cost depends only on the subtree size; sizes repeat
       massively across a balanced split, so memoize. *)
    let memo : (int, float) Hashtbl.t = Hashtbl.create 64 in
    let rec walk s =
      if s <= 1 then 0.0
      else
        match Hashtbl.find_opt memo s with
        | Some c -> c
        | None ->
            let sizes = child_sizes ~d s in
            let own = float_of_int (List.length sizes) *. p_update s in
            let c = List.fold_left (fun acc cs -> acc +. walk cs) own sizes in
            Hashtbl.replace memo s c;
            c
    in
    walk n
  end

let expected_keys ~d ~n ~l =
  check_args ~d ~n ~l;
  let n_int = int_of_float (Float.round n) in
  let l = min l (float_of_int n_int) in
  let lo = floor l and hi = ceil l in
  if lo = hi then expected_keys_int ~d ~n:n_int ~l:(int_of_float l)
  else begin
    let frac = l -. lo in
    let c_lo = expected_keys_int ~d ~n:n_int ~l:(int_of_float lo) in
    let c_hi = expected_keys_int ~d ~n:n_int ~l:(int_of_float hi) in
    (c_lo *. (1.0 -. frac)) +. (c_hi *. frac)
  end

let per_level ~d ~n ~l =
  check_args ~d ~n:(float_of_int n) ~l:(float_of_int l);
  let l = min l n in
  let levels : (int, float) Hashtbl.t = Hashtbl.create 16 in
  if n > 1 && l > 0 then begin
    let nf = float_of_int n and lf = float_of_int l in
    let p_update s =
      1.0 -. Gkm_sim.Mathx.choose_ratio ~total:nf ~excluded:(float_of_int s) ~draws:lf
    in
    let rec walk level s =
      if s > 1 then begin
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt levels level) in
        Hashtbl.replace levels level (prev +. p_update s);
        List.iter (walk (level + 1)) (child_sizes ~d s)
      end
    in
    walk 0 n
  end;
  Hashtbl.fold (fun level v acc -> (level, v) :: acc) levels []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
