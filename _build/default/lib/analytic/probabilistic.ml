(* Numeric optimization of the two-class depth assignment. With the
   Kraft constraint active, dl is a function of ds; the objective is
   convex in ds, so a fine golden-section search is ample. *)

let kraft_dl ~d ~ncs ~ncl ds =
  (* Ncs d^-ds + Ncl d^-dl = 1  =>  dl = -log_d((1 - Ncs d^-ds) / Ncl) *)
  let df = float_of_int d in
  let slack = 1.0 -. (ncs *. (df ** -.ds)) in
  if slack <= 0.0 then None
  else begin
    let dl = -.(log (slack /. ncl) /. log df) in
    (* A leaf cannot sit above depth 1 in a real tree. *)
    Some (max 1.0 dl)
  end

let derived_counts p =
  let dv = Two_partition.derive p in
  (dv.ncs, dv.ncl, dv.lcs, dv.lcl)

let objective ~d ~lcs ~lcl ds dl = float_of_int d *. ((lcs *. ds) +. (lcl *. dl))

let optimal_depths (p : Params.t) =
  Params.validate p;
  let ncs, ncl, lcs, lcl = derived_counts p in
  let df = float_of_int p.d in
  if ncs <= 0.0 then begin
    let depth = max 1.0 (log (max 1.0 ncl) /. log df) in
    (1.0, depth)
  end
  else if ncl <= 0.0 then begin
    let depth = max 1.0 (log (max 1.0 ncs) /. log df) in
    (depth, 1.0)
  end
  else begin
    (* ds must leave room for the long class: Ncs d^-ds < 1. *)
    let ds_min = max 1.0 ((log ncs /. log df) +. 1e-9) in
    let ds_max = (log (ncs +. ncl) /. log df) +. 4.0 in
    let eval ds =
      match kraft_dl ~d:p.d ~ncs ~ncl ds with
      | None -> infinity
      | Some dl -> objective ~d:p.d ~lcs ~lcl ds dl
    in
    let rec golden a b i =
      if i = 0 then (a +. b) /. 2.0
      else begin
        let phi = 0.381966 in
        let x1 = a +. (phi *. (b -. a)) and x2 = b -. (phi *. (b -. a)) in
        if eval x1 < eval x2 then golden a x2 (i - 1) else golden x1 b (i - 1)
      end
    in
    let ds = golden ds_min ds_max 80 in
    match kraft_dl ~d:p.d ~ncs ~ncl ds with
    | Some dl -> (ds, dl)
    | None -> (ds_max, ds_max)
  end

let cost (p : Params.t) =
  let _, _, lcs, lcl = derived_counts p in
  let ds, dl = optimal_depths p in
  objective ~d:p.d ~lcs ~lcl ds dl

let balanced_cost (p : Params.t) =
  let _, _, lcs, lcl = derived_counts p in
  let depth = max 1.0 (Gkm_sim.Mathx.logd ~d:p.d (float_of_int (max 2 p.n))) in
  objective ~d:p.d ~lcs ~lcl depth depth

let reduction p =
  let base = balanced_cost p in
  if base = 0.0 then 0.0 else 1.0 -. (cost p /. base)
