(** Section 3.3.1: the steady-state analytic model of the
    two-partition rekeying algorithm.

    The group is an open two-class queueing system: joins arrive at
    rate [J] per rekey interval, a fraction [alpha] from the
    short-duration class Cs (exponential mean [Ms]) and the rest from
    Cl (mean [Ml]). Members spend their first [K] intervals in the
    S-partition; survivors are migrated in batch to the L-partition.

    The model yields per-interval rekeying costs (in encrypted keys)
    for the four schemes: the one-keytree baseline, QT (queue + tree),
    TT (tree + tree) and PT (the oracle that places members by their
    true class). *)

type scheme = One_keytree | Qt | Tt | Pt

val scheme_name : scheme -> string
val all_schemes : scheme list

type derived = {
  j : float;  (** joins (= departures) per rekey interval *)
  ncs : float;  (** steady-state members of class Cs *)
  ncl : float;  (** steady-state members of class Cl *)
  lcs : float;  (** class-Cs departures per interval *)
  lcl : float;  (** class-Cl departures per interval *)
  ns : float;  (** members resident in the S-partition *)
  nl : float;  (** members resident in the L-partition *)
  lm : float;  (** migrations S -> L per interval *)
  ls : float;  (** departures from the S-partition per interval *)
  ll : float;  (** departures from the L-partition per interval *)
}

val derive : Params.t -> derived
(** Solve the steady state (formulas 1-7).
    @raise Invalid_argument via {!Params.validate}. *)

val cost : Params.t -> scheme -> float
(** Expected encrypted keys per rekey interval (formulas 8-10, with
    the one-keytree baseline as [Ne(N, J)]). *)

val reduction : Params.t -> scheme -> float
(** [1 - cost scheme / cost One_keytree] — the relative bandwidth
    saving plotted in Fig. 5. *)

val best_k : Params.t -> scheme -> k_max:int -> int * float
(** [best_k p scheme ~k_max] scans S-periods [0 .. k_max] and returns
    the cheapest [(k, cost)] — the adaptive tuning sketched in
    Section 3.4. *)
