type config = { n : int; l : int; d : int; ph : float; pl : float }

let default = { n = 65536; l = 256; d = 4; ph = 0.2; pl = 0.02 }

let validate c =
  if c.n < 0 then invalid_arg "Loss_homogenized: negative population";
  if c.l < 0 then invalid_arg "Loss_homogenized: negative departures";
  if c.d < 2 then invalid_arg "Loss_homogenized: degree must be >= 2";
  if c.ph < 0.0 || c.ph >= 1.0 then invalid_arg "Loss_homogenized: ph outside [0, 1)";
  if c.pl < 0.0 || c.pl >= 1.0 then invalid_arg "Loss_homogenized: pl outside [0, 1)"

let check_alpha alpha =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Loss_homogenized: alpha outside [0, 1]"

let one_keytree c ~alpha =
  validate c;
  check_alpha alpha;
  Wka_bkr.forest_cost ~d:c.d
    [ { size = c.n; departures = c.l; composition = Wka_bkr.two_class ~alpha ~ph:c.ph ~pl:c.pl } ]

let two_random c ~alpha =
  validate c;
  check_alpha alpha;
  let comp = Wka_bkr.two_class ~alpha ~ph:c.ph ~pl:c.pl in
  let n1 = c.n / 2 in
  let n2 = c.n - n1 in
  let l1 = int_of_float (Float.round (float_of_int c.l *. float_of_int n1 /. float_of_int (max 1 c.n))) in
  let l2 = c.l - l1 in
  Wka_bkr.forest_cost ~d:c.d
    [
      { size = n1; departures = l1; composition = comp };
      { size = n2; departures = l2; composition = comp };
    ]

let proportional_departures c sizes =
  (* Distribute c.l across trees proportionally, largest remainder. *)
  let total = List.fold_left ( + ) 0 sizes in
  if total = 0 then List.map (fun _ -> 0) sizes
  else begin
    let exact =
      List.map (fun s -> float_of_int c.l *. float_of_int s /. float_of_int total) sizes
    in
    let base = List.map (fun e -> int_of_float (floor e)) exact in
    let assigned = List.fold_left ( + ) 0 base in
    let remainders =
      List.mapi (fun i e -> (e -. floor e, i)) exact
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    let extra = c.l - assigned in
    let bonus = Array.make (List.length sizes) 0 in
    List.iteri (fun rank (_, i) -> if rank < extra then bonus.(i) <- 1) remainders;
    List.mapi (fun i b -> b + bonus.(i)) base
  end

let loss_homogenized c ~alpha =
  validate c;
  check_alpha alpha;
  let nh = int_of_float (Float.round (alpha *. float_of_int c.n)) in
  let nl_ = c.n - nh in
  let deps = proportional_departures c [ nh; nl_ ] in
  let lh, ll = (List.nth deps 0, List.nth deps 1) in
  Wka_bkr.forest_cost ~d:c.d
    [
      { size = nh; departures = lh; composition = Wka_bkr.uniform c.ph };
      { size = nl_; departures = ll; composition = Wka_bkr.uniform c.pl };
    ]

let mispartitioned c ~alpha ~beta =
  validate c;
  check_alpha alpha;
  if beta < 0.0 || beta > 1.0 then invalid_arg "Loss_homogenized: beta outside [0, 1]";
  let nh = int_of_float (Float.round (alpha *. float_of_int c.n)) in
  let nl_ = c.n - nh in
  let deps = proportional_departures c [ nh; nl_ ] in
  let lh, ll = (List.nth deps 0, List.nth deps 1) in
  (* The "high" tree keeps its size but a fraction beta of its members
     are actually low-loss; the same head-count of truly high-loss
     members sits in the "low" tree. *)
  let swapped = beta *. float_of_int nh in
  let comp_h = Wka_bkr.two_class ~alpha:(1.0 -. beta) ~ph:c.ph ~pl:c.pl in
  let frac_high_in_low = if nl_ = 0 then 0.0 else swapped /. float_of_int nl_ in
  let comp_l = Wka_bkr.two_class ~alpha:frac_high_in_low ~ph:c.ph ~pl:c.pl in
  Wka_bkr.forest_cost ~d:c.d
    [
      { size = nh; departures = lh; composition = comp_h };
      { size = nl_; departures = ll; composition = comp_l };
    ]

let k_band c ~rates =
  validate c;
  let total_frac = List.fold_left (fun acc (f, _) -> acc +. f) 0.0 rates in
  if abs_float (total_frac -. 1.0) > 1e-6 then
    invalid_arg "Loss_homogenized.k_band: fractions must sum to 1";
  let sizes =
    List.map (fun (f, _) -> int_of_float (Float.round (f *. float_of_int c.n))) rates
  in
  let deps = proportional_departures c sizes in
  let trees =
    List.map2
      (fun (_, p) (size, departures) ->
        { Wka_bkr.size; departures; composition = Wka_bkr.uniform p })
      rates
      (List.combine sizes deps)
  in
  Wka_bkr.forest_cost ~d:c.d trees

let reduction c ~alpha =
  let base = one_keytree c ~alpha in
  if base = 0.0 then 0.0 else 1.0 -. (loss_homogenized c ~alpha /. base)
