(** Appendix A: expected number of encrypted keys for a batched
    rekeying, [Ne(N, L)].

    Given a balanced d-ary key tree with [n] member leaves, [l]
    departures uniformly spread over the leaves (and [l] simultaneous
    joins replacing them), an interior key at a node with [s] member
    leaves below it is refreshed with probability

      P = 1 - C(n - s, l) / C(n, l)                       (formula 11)

    and each refreshed key is encrypted once per child. The paper sums
    over levels of a full tree (formula 12); this implementation walks
    an exactly balanced split of [n] leaves so that non-powers of [d]
    (partially full trees) are handled exactly. Fractional [n] and [l]
    from the steady-state model are handled by rounding [n] and
    linearly interpolating between the two integer neighbours of
    [l]. *)

val expected_keys : d:int -> n:float -> l:float -> float
(** [expected_keys ~d ~n ~l] is [Ne(n, l)]. Zero when [n <= 1] or
    [l <= 0]; [l] is capped at [n].
    @raise Invalid_argument if [d < 2] or inputs are negative/NaN. *)

val expected_keys_int : d:int -> n:int -> l:int -> float
(** Integer-exact variant. *)

val per_level : d:int -> n:int -> l:int -> (int * float) list
(** [(level, expected updated keys at that level)] for diagnostics and
    tests; level 0 is the root. Updated-key counts are per formula
    (11); multiply by the node's child count for encryption cost. *)
