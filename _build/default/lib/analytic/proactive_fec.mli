(** Section 4.4: bandwidth model of the proactive-FEC rekey transport
    [YLZL01], used to quantify the loss-homogenized scheme's gain
    under FEC (the paper reports up to 25.7% at alpha = 0.1 without
    showing a figure).

    Model: the rekey payload is packed into data packets ([c] keys
    each), grouped into FEC blocks of [k] packets. In round 1 the
    server multicasts each block's [k] data packets plus [a0]
    proactive Reed-Solomon parities; a receiver decodes a block once
    it holds any [k] of its packets. After each round receivers NACK
    their shortfall and the server multicasts [max shortfall] fresh
    parities. The per-block proactivity [a0] is chosen to minimize the
    expected total packets for the receiver population — the adaptive
    tuning of [YLZL01].

    Simplification (documented in DESIGN.md): every receiver is
    assumed to need every block, i.e. the sparseness of the rekey
    payload is not exploited; this is conservative and affects all
    compared schemes equally. *)

type config = {
  keys_per_packet : int;  (** c *)
  block_size : int;  (** k *)
  max_proactivity : int;  (** search bound for a0 *)
}

val default : config
(** c = 25 keys/packet, k = 16 packets/block, a0 search up to 32. *)

val block_cost :
  config -> receivers:float -> composition:Wka_bkr.composition -> a0:int -> float
(** Expected packets multicast to deliver one block to all receivers,
    with [a0] proactive parities in the first round. *)

val optimal_block_cost :
  config -> receivers:float -> composition:Wka_bkr.composition -> int * float
(** Minimizing [(a0, expected packets)]. *)

val scheme_cost :
  config -> keys:float -> receivers:float -> composition:Wka_bkr.composition -> float
(** Expected bandwidth in key-equivalents ([packets * c]) to deliver a
    [keys]-key payload. *)

val one_keytree : config -> Loss_homogenized.config -> alpha:float -> float
val loss_homogenized : config -> Loss_homogenized.config -> alpha:float -> float

val reduction : config -> Loss_homogenized.config -> alpha:float -> float
(** [1 - loss_homogenized / one_keytree]. *)
