(** Appendix B: the bandwidth model of the WKA-BKR reliable rekey
    transport [SZJ02], generalized to heterogeneous receiver loss and
    to forests of key trees.

    For one encryption of an updated key needed by [R] receivers with
    independent per-packet loss, the number of transmissions until all
    [R] hold it satisfies

      P[M <= m] = prod_r (1 - p_r^m)                      (formula 13)
      E[M] = sum_{m>=1} (1 - prod_r (1 - p_r^{m-1}))      (formula 14)

    and the expected rekey bandwidth is the sum of E[M] over every
    wrap of every key expected to be updated (formulas 11, 15). *)

type composition = (float * float) list
(** [(fraction, loss_rate)] pairs; fractions must sum to ~1. Receivers
    of a subtree are assumed to be a uniform mix of these classes. *)

val uniform : float -> composition
(** Single-class composition. *)

val two_class : alpha:float -> ph:float -> pl:float -> composition
(** Fraction [alpha] at loss [ph], the rest at [pl]. *)

val validate_composition : composition -> unit
(** @raise Invalid_argument on bad fractions or loss rates. *)

val expected_replications : receivers:float -> composition -> float
(** [E[M]] for one encryption needed by [receivers] receivers drawn
    from [composition] (formula 14, evaluated with real-valued class
    counts [fraction * receivers]). Returns 0 when [receivers <= 0]. *)

type tree = {
  size : int;  (** members in this key tree *)
  departures : int;  (** batched departures from this tree *)
  composition : composition;
}

val tree_cost : d:int -> tree -> float
(** Expected WKA-BKR bandwidth (encrypted-key transmissions) for one
    batched rekeying of a single key tree (formula 15, evaluated on an
    exactly balanced split so non-power-of-d sizes are handled). *)

val forest_cost : d:int -> tree list -> float
(** Multiple key trees joined under the group key: each tree is a
    subtree of the root DEK node. The DEK is refreshed whenever any
    tree sees a departure and must be re-encrypted under each tree
    root (delivered to that tree's full membership). A single
    non-empty tree degenerates to {!tree_cost} — the root of the only
    tree IS the DEK, matching the paper's one-keytree baseline. Empty
    trees are skipped. *)
