(** Probabilistic key-tree organization [SMS00] (Section 2.3 of the
    paper): place members that are more likely to leave closer to the
    root, "in a spirit similar to data compression algorithms such as
    Huffman and Shannon-Fano coding".

    For the paper's two-class population this reduces to choosing real
    depths (ds, dl) for the short and long classes that minimize the
    expected per-interval rekeying work under individual rekeying,

      cost = d * (Lcs * ds + Lcl * dl),

    subject to the Kraft feasibility of a d-ary tree,

      Ncs * d^(-ds) + Ncl * d^(-dl) <= 1.

    Like the PT oracle, it assumes the class of each member is known
    at join time; unlike the two-partition schemes it keeps a single
    tree. Implemented as the A5 ablation: how much of the
    two-partition gain does pure depth optimization recover? *)

val optimal_depths : Params.t -> float * float
(** [(ds, dl)] minimizing the expected cost; both >= 1 when both
    classes are non-empty, and tight on the Kraft constraint. *)

val cost : Params.t -> float
(** Expected encrypted keys per rekey interval at the optimal depths
    (individual rekeying: each departure refreshes its whole path,
    one encryption per child per refreshed key). *)

val balanced_cost : Params.t -> float
(** Same regime with everyone at the balanced depth [log_d N]. *)

val reduction : Params.t -> float
(** [1 - cost / balanced_cost]. *)
