lib/analytic/proactive_fec.mli: Loss_homogenized Wka_bkr
