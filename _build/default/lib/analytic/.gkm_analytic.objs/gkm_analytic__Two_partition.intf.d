lib/analytic/two_partition.mli: Params
