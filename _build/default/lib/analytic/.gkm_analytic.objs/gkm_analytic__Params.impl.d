lib/analytic/params.ml: Format
