lib/analytic/loss_homogenized.ml: Array Float List Wka_bkr
