lib/analytic/wka_bkr.ml: Gkm_sim Hashtbl List Printf
