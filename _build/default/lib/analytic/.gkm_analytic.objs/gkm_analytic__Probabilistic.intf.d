lib/analytic/probabilistic.mli: Params
