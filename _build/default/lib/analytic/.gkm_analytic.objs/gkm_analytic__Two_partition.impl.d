lib/analytic/two_partition.ml: Batch_cost Params
