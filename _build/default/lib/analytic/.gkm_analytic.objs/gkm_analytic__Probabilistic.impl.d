lib/analytic/probabilistic.ml: Gkm_sim Params Two_partition
