lib/analytic/batch_cost.mli:
