lib/analytic/batch_cost.ml: Float Gkm_sim Hashtbl List Option
