lib/analytic/loss_homogenized.mli:
