lib/analytic/proactive_fec.ml: Batch_cost Float Gkm_sim List Loss_homogenized Wka_bkr
