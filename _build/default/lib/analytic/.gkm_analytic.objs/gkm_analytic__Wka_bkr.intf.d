lib/analytic/wka_bkr.mli:
