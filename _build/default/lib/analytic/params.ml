type t = {
  tp : float;
  n : int;
  d : int;
  k : int;
  ms : float;
  ml : float;
  alpha : float;
}

let default =
  {
    tp = 60.0;
    n = 65536;
    d = 4;
    k = 10;
    ms = 3.0 *. 60.0;
    ml = 3.0 *. 3600.0;
    alpha = 0.8;
  }

let validate t =
  if t.tp <= 0.0 then invalid_arg "Params: rekey period must be positive";
  if t.n < 0 then invalid_arg "Params: group size must be non-negative";
  if t.d < 2 then invalid_arg "Params: degree must be >= 2";
  if t.k < 0 then invalid_arg "Params: S-period multiplier must be >= 0";
  if t.ms <= 0.0 then invalid_arg "Params: Ms must be positive";
  if t.ml <= 0.0 then invalid_arg "Params: Ml must be positive";
  if t.alpha < 0.0 || t.alpha > 1.0 then invalid_arg "Params: alpha outside [0, 1]"

let pp fmt t =
  Format.fprintf fmt
    "Tp=%gs N=%d d=%d K=%d Ms=%gs Ml=%gs alpha=%g" t.tp t.n t.d t.k t.ms t.ml t.alpha
