type scheme = One_keytree | Qt | Tt | Pt

let scheme_name = function
  | One_keytree -> "one-keytree"
  | Qt -> "QT-scheme"
  | Tt -> "TT-scheme"
  | Pt -> "PT-scheme"

let all_schemes = [ One_keytree; Qt; Tt; Pt ]

type derived = {
  j : float;
  ncs : float;
  ncl : float;
  lcs : float;
  lcl : float;
  ns : float;
  nl : float;
  lm : float;
  ls : float;
  ll : float;
}

(* Formula (2): probability that a member with mean duration [m]
   departs within a window of length [t]. *)
let pr t m = 1.0 -. exp (-.t /. m)

let derive (p : Params.t) =
  Params.validate p;
  let n = float_of_int p.n in
  let ps = pr p.tp p.ms and pl = pr p.tp p.ml in
  (* N = Ncs + Ncl with Ncs = alpha J / Ps, Ncl = (1 - alpha) J / Pl
     (formulas 1, 3-5). *)
  let j = n /. ((p.alpha /. ps) +. ((1.0 -. p.alpha) /. pl)) in
  let ncs = p.alpha *. j /. ps in
  let ncl = (1.0 -. p.alpha) *. j /. pl in
  let lcs = p.alpha *. j in
  let lcl = (1.0 -. p.alpha) *. j in
  (* Formula (6): residents of the S-partition by age cohort. *)
  let ns = ref 0.0 in
  for i = 0 to p.k - 1 do
    let age = float_of_int i *. p.tp in
    ns :=
      !ns
      +. (p.alpha *. j *. exp (-.age /. p.ms))
      +. ((1.0 -. p.alpha) *. j *. exp (-.age /. p.ml))
  done;
  let ns = !ns in
  let nl = n -. ns in
  (* Formula (7): survivors of the full S-period migrate. *)
  let ts = float_of_int p.k *. p.tp in
  let lm =
    (p.alpha *. j *. exp (-.ts /. p.ms)) +. ((1.0 -. p.alpha) *. j *. exp (-.ts /. p.ml))
  in
  let ls = j -. lm in
  let ll = lm in
  { j; ncs; ncl; lcs; lcl; ns; nl; lm; ls; ll }

let ne (p : Params.t) n l = Batch_cost.expected_keys ~d:p.d ~n ~l

let cost (p : Params.t) scheme =
  let dv = derive p in
  match scheme with
  | One_keytree -> ne p (float_of_int p.n) dv.j
  | Qt ->
      (* Formula (8): the queue costs one key per S-resident, plus the
         L-partition tree. *)
      if p.k = 0 then ne p (float_of_int p.n) dv.j
      else dv.ns +. ne p dv.nl dv.ll
  | Tt ->
      (* Formula (9): the S-tree turns over J members per interval
         (Ls departures + Lm migrations = J). *)
      if p.k = 0 then ne p (float_of_int p.n) dv.j
      else ne p dv.ns dv.j +. ne p dv.nl dv.ll
  | Pt ->
      (* Formula (10): oracle placement, no migration. *)
      ne p dv.ncs dv.lcs +. ne p dv.ncl dv.lcl

let reduction p scheme =
  let base = cost p One_keytree in
  if base = 0.0 then 0.0 else 1.0 -. (cost p scheme /. base)

let best_k (p : Params.t) scheme ~k_max =
  if k_max < 0 then invalid_arg "Two_partition.best_k: negative k_max";
  let rec scan k best =
    if k > k_max then best
    else begin
      let c = cost { p with k } scheme in
      let best = match best with Some (_, bc) when bc <= c -> best | _ -> Some (k, c) in
      scan (k + 1) best
    end
  in
  match scan 0 None with Some r -> r | None -> assert false
