type composition = (float * float) list

let uniform p = [ (1.0, p) ]

let two_class ~alpha ~ph ~pl =
  if alpha <= 0.0 then [ (1.0, pl) ]
  else if alpha >= 1.0 then [ (1.0, ph) ]
  else [ (alpha, ph); (1.0 -. alpha, pl) ]

let validate_composition comp =
  if comp = [] then invalid_arg "Wka_bkr: empty composition";
  let total = List.fold_left (fun acc (f, _) -> acc +. f) 0.0 comp in
  if abs_float (total -. 1.0) > 1e-6 then
    invalid_arg (Printf.sprintf "Wka_bkr: composition fractions sum to %g, not 1" total);
  List.iter
    (fun (f, p) ->
      if f < 0.0 then invalid_arg "Wka_bkr: negative class fraction";
      if p < 0.0 || p >= 1.0 then
        invalid_arg (Printf.sprintf "Wka_bkr: loss rate %g outside [0, 1)" p))
    comp

(* E[M] = sum_{m>=1} (1 - prod_c (1 - p_c^{m-1})^{R_c}), truncated when
   the tail term is negligible. The m = 1 term is always 1 (the first
   transmission always happens). *)
let expected_replications ~receivers comp =
  validate_composition comp;
  if receivers <= 0.0 then 0.0
  else begin
    let classes =
      List.filter_map
        (fun (f, p) ->
          let r = f *. receivers in
          if r <= 0.0 || p <= 0.0 then None else Some (r, p))
        comp
    in
    if classes = [] then 1.0
    else begin
      let total = ref 1.0 (* m = 1 *) in
      let m = ref 2 in
      let continue = ref true in
      while !continue do
        (* term = 1 - prod_c (1 - p_c^(m-1))^(R_c), in log space. *)
        let log_prod =
          List.fold_left
            (fun acc (r, p) ->
              acc +. (r *. log1p (-.(p ** float_of_int (!m - 1)))))
            0.0 classes
        in
        let term = -.expm1 log_prod in
        total := !total +. term;
        if term < 1e-12 || !m > 100_000 then continue := false;
        incr m
      done;
      !total
    end
  end

type tree = { size : int; departures : int; composition : composition }

let child_sizes ~d s =
  let nchild = min d s in
  let q = s / nchild and r = s mod nchild in
  List.init nchild (fun i -> if i < r then q + 1 else q)

let tree_cost ~d (t : tree) =
  if d < 2 then invalid_arg "Wka_bkr.tree_cost: degree must be >= 2";
  validate_composition t.composition;
  if t.size < 0 || t.departures < 0 then invalid_arg "Wka_bkr.tree_cost: negative inputs";
  let l = min t.departures t.size in
  if t.size <= 1 || l <= 0 then 0.0
  else begin
    let nf = float_of_int t.size and lf = float_of_int l in
    let p_update s =
      1.0 -. Gkm_sim.Mathx.choose_ratio ~total:nf ~excluded:(float_of_int s) ~draws:lf
    in
    let em = Hashtbl.create 32 in
    let replications s =
      match Hashtbl.find_opt em s with
      | Some v -> v
      | None ->
          let v = expected_replications ~receivers:(float_of_int s) t.composition in
          Hashtbl.replace em s v;
          v
    in
    let memo = Hashtbl.create 64 in
    let rec walk s =
      if s <= 1 then 0.0
      else
        match Hashtbl.find_opt memo s with
        | Some c -> c
        | None ->
            let sizes = child_sizes ~d s in
            let own =
              p_update s *. List.fold_left (fun acc cs -> acc +. replications cs) 0.0 sizes
            in
            let c = List.fold_left (fun acc cs -> acc +. walk cs) own sizes in
            Hashtbl.replace memo s c;
            c
    in
    walk t.size
  end

let forest_cost ~d trees =
  let live = List.filter (fun t -> t.size > 0) trees in
  let per_tree = List.fold_left (fun acc t -> acc +. tree_cost ~d t) 0.0 live in
  match live with
  | [] | [ _ ] -> per_tree
  | _ :: _ :: _ ->
      let any_departure = List.exists (fun t -> min t.departures t.size > 0) live in
      if not any_departure then per_tree
      else begin
        (* The DEK node sits above the tree roots: one encryption per
           tree, each needed by that tree's whole membership. *)
        let dek_cost =
          List.fold_left
            (fun acc t ->
              acc +. expected_replications ~receivers:(float_of_int t.size) t.composition)
            0.0 live
        in
        per_tree +. dek_cost
      end
