(** Parameters of the two-partition analytic model — Table 1 of the
    paper. *)

type t = {
  tp : float;  (** rekeying period, seconds *)
  n : int;  (** group size *)
  d : int;  (** key tree degree *)
  k : int;  (** S-period in rekey intervals: Ts = k * Tp *)
  ms : float;  (** mean membership duration of class Cs, seconds *)
  ml : float;  (** mean membership duration of class Cl, seconds *)
  alpha : float;  (** fraction of joins from class Cs *)
}

val default : t
(** Table 1: Tp = 60 s, N = 65536, d = 4, K = 10, Ms = 3 min,
    Ml = 3 h, alpha = 0.8. *)

val validate : t -> unit
(** @raise Invalid_argument on nonsensical parameters. *)

val pp : Format.formatter -> t -> unit
