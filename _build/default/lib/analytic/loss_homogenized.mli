(** Section 4: rekeying bandwidth of key-tree organizations under the
    WKA-BKR transport, for a two-class loss population (fraction
    [alpha] of receivers at high loss [ph], the rest at low loss
    [pl]).

    Reproduces Fig. 6 (one keytree vs. two random keytrees vs. two
    loss-homogenized keytrees) and Fig. 7 (sensitivity to misplaced
    receivers), plus the k-band generalization discussed as an
    extension in DESIGN.md. *)

type config = {
  n : int;  (** receivers *)
  l : int;  (** batched departures per rekey event *)
  d : int;  (** key tree degree *)
  ph : float;  (** high loss rate *)
  pl : float;  (** low loss rate *)
}

val default : config
(** N = 65536, L = 256, d = 4, ph = 0.2, pl = 0.02 (Section 4.3). *)

val validate : config -> unit

val one_keytree : config -> alpha:float -> float
(** All receivers in a single tree; WKA replication driven by the
    mixed composition. *)

val two_random : config -> alpha:float -> float
(** Two equal-size trees with members placed randomly: both trees see
    the full mixed composition. Isolates the effect of merely having
    two trees. *)

val loss_homogenized : config -> alpha:float -> float
(** High-loss receivers in one tree, low-loss in the other; departures
    proportional to tree size. Falls back to {!one_keytree} when the
    population is homogeneous (alpha = 0 or 1). *)

val mispartitioned : config -> alpha:float -> beta:float -> float
(** Fig. 7: tree sizes as in the correctly partitioned scheme, but a
    fraction [beta] of the high-loss tree's members are actually
    low-loss and the same head-count of the low-loss tree's members
    are actually high-loss. [beta = 0] is the correct partition. *)

val k_band : config -> rates:(float * float) list -> float
(** Extension: one tree per loss band. [rates] lists
    [(fraction of receivers, loss rate)] per band; departures are
    proportional to band size.
    @raise Invalid_argument if fractions do not sum to ~1. *)

val reduction : config -> alpha:float -> float
(** [1 - loss_homogenized / one_keytree]; the paper's headline is up
    to 12.1% at alpha = 0.3. *)
