type config = { keys_per_packet : int; block_size : int; max_proactivity : int }

let default = { keys_per_packet = 25; block_size = 16; max_proactivity = 32 }

let validate cfg =
  if cfg.keys_per_packet < 1 then invalid_arg "Proactive_fec: keys_per_packet must be >= 1";
  if cfg.block_size < 1 then invalid_arg "Proactive_fec: block_size must be >= 1";
  if cfg.max_proactivity < 0 then invalid_arg "Proactive_fec: negative proactivity bound"

(* ln P[Bin(n, q) >= k] — probability a receiver with success rate q
   holds at least k of n packets. *)
let ln_binomial_tail ~n ~q ~k =
  if k <= 0 then 0.0
  else if k > n then neg_infinity
  else if q >= 1.0 then 0.0
  else if q <= 0.0 then neg_infinity
  else begin
    let lnq = log q and lnq' = log (1.0 -. q) in
    let nf = float_of_int n in
    let acc = ref 0.0 in
    for i = k to n do
      let fi = float_of_int i in
      let term =
        Gkm_sim.Mathx.ln_choose nf fi +. (fi *. lnq) +. ((nf -. fi) *. lnq')
      in
      acc := !acc +. exp term
    done;
    if !acc >= 1.0 then 0.0 else log !acc
  end

let block_cost cfg ~receivers ~composition ~a0 =
  validate cfg;
  Wka_bkr.validate_composition composition;
  if a0 < 0 then invalid_arg "Proactive_fec.block_cost: negative a0";
  if receivers <= 0.0 then 0.0
  else begin
    let k = cfg.block_size in
    let classes =
      List.filter_map
        (fun (f, p) ->
          let r = f *. receivers in
          if r <= 0.0 then None else Some (r, 1.0 -. p))
        composition
    in
    (* ln P[every receiver holds >= j of n packets]. *)
    let ln_all_have ~n ~j =
      List.fold_left (fun acc (r, q) -> acc +. (r *. ln_binomial_tail ~n ~q ~k:j)) 0.0 classes
    in
    let total = ref (float_of_int (k + a0)) in
    let sent = ref (k + a0) in
    let round = ref 0 in
    let undone = ref (-.expm1 (ln_all_have ~n:!sent ~j:k)) in
    while !undone > 1e-9 && !round < 60 do
      incr round;
      (* E[max shortfall] = sum_{j>=1} P[some receiver misses >= j]. *)
      let expected_max = ref 0.0 in
      for j = 1 to k do
        let p_ge_j = -.expm1 (ln_all_have ~n:!sent ~j:(k - j + 1)) in
        expected_max := !expected_max +. p_ge_j
      done;
      let send_now = max 1 (int_of_float (Float.round !expected_max)) in
      total := !total +. !expected_max;
      sent := !sent + send_now;
      undone := -.expm1 (ln_all_have ~n:!sent ~j:k)
    done;
    !total
  end

let optimal_block_cost cfg ~receivers ~composition =
  validate cfg;
  let rec scan a0 best =
    if a0 > cfg.max_proactivity then best
    else begin
      let c = block_cost cfg ~receivers ~composition ~a0 in
      let best = match best with Some (_, bc) when bc <= c -> best | _ -> Some (a0, c) in
      scan (a0 + 1) best
    end
  in
  match scan 0 None with Some r -> r | None -> assert false

let scheme_cost cfg ~keys ~receivers ~composition =
  validate cfg;
  if keys <= 0.0 || receivers <= 0.0 then 0.0
  else begin
    let per_block = float_of_int (cfg.keys_per_packet * cfg.block_size) in
    let blocks = Float.ceil (keys /. per_block) in
    let _, cost = optimal_block_cost cfg ~receivers ~composition in
    blocks *. cost *. float_of_int cfg.keys_per_packet
  end

let one_keytree cfg (lc : Loss_homogenized.config) ~alpha =
  Loss_homogenized.validate lc;
  let keys = Batch_cost.expected_keys ~d:lc.d ~n:(float_of_int lc.n) ~l:(float_of_int lc.l) in
  scheme_cost cfg ~keys ~receivers:(float_of_int lc.n)
    ~composition:(Wka_bkr.two_class ~alpha ~ph:lc.ph ~pl:lc.pl)

let loss_homogenized cfg (lc : Loss_homogenized.config) ~alpha =
  Loss_homogenized.validate lc;
  if alpha <= 0.0 || alpha >= 1.0 then one_keytree cfg lc ~alpha
  else begin
    let nh = int_of_float (Float.round (alpha *. float_of_int lc.n)) in
    let nl = lc.n - nh in
    let lh =
      int_of_float
        (Float.round (float_of_int lc.l *. float_of_int nh /. float_of_int (max 1 lc.n)))
    in
    let ll = lc.l - lh in
    let tree size departures p =
      if size = 0 then 0.0
      else begin
        (* Per-tree payload plus one DEK wrap delivered to this tree. *)
        let keys =
          Batch_cost.expected_keys ~d:lc.d ~n:(float_of_int size) ~l:(float_of_int departures)
          +. 1.0
        in
        scheme_cost cfg ~keys ~receivers:(float_of_int size) ~composition:(Wka_bkr.uniform p)
      end
    in
    tree nh lh lc.ph +. tree nl ll lc.pl
  end

let reduction cfg lc ~alpha =
  let base = one_keytree cfg lc ~alpha in
  if base = 0.0 then 0.0 else 1.0 -. (loss_homogenized cfg lc ~alpha /. base)
