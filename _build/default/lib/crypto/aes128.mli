(** Pure-OCaml AES-128 (FIPS 197).

    Provides the raw block cipher plus the two modes the key server
    needs: single-block ECB for wrapping 16-byte keys, and CTR for
    payload encryption in the examples. Validated against the FIPS 197
    and NIST SP 800-38A vectors in the test suite.

    This implementation is table-based and NOT constant-time; it is
    intended for the simulator and examples, not hostile environments. *)

type key
(** An expanded AES-128 key schedule. *)

val expand : bytes -> key
(** [expand k] expands the 16-byte key [k].

    @raise Invalid_argument if [k] is not 16 bytes. *)

val encrypt_block : key -> bytes -> bytes
(** [encrypt_block k block] encrypts one 16-byte block.

    @raise Invalid_argument if [block] is not 16 bytes. *)

val decrypt_block : key -> bytes -> bytes
(** [decrypt_block k block] decrypts one 16-byte block.

    @raise Invalid_argument if [block] is not 16 bytes. *)

val ctr_transform : key -> nonce:bytes -> bytes -> bytes
(** [ctr_transform k ~nonce data] encrypts or decrypts [data] (the
    operation is an involution) in CTR mode. [nonce] must be 16 bytes
    and is used as the initial counter block, incremented big-endian.

    @raise Invalid_argument if [nonce] is not 16 bytes. *)
