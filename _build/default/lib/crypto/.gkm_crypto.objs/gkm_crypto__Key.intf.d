lib/crypto/key.mli: Format Prng
