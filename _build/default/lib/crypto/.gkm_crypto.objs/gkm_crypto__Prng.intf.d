lib/crypto/prng.mli:
