lib/crypto/key.ml: Aes128 Bytes Format Hex Hmac Prng Sha256
