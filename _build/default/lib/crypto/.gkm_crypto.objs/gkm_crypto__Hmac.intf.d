lib/crypto/hmac.mli:
