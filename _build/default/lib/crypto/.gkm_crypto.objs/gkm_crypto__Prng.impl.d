lib/crypto/prng.ml: Array Bytes Char Int64
