lib/crypto/bytes_io.mli:
