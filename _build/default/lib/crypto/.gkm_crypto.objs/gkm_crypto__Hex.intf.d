lib/crypto/hex.mli:
