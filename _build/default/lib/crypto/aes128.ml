(* AES-128 per FIPS 197. Byte-oriented, table-based S-box, explicit
   MixColumns over GF(2^8). *)

let sbox =
  [|
    0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
    0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
    0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
    0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
    0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
    0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
    0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
    0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
    0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
    0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
    0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
    0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
    0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
    0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
    0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
    0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
    0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
    0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
    0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
    0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
    0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
    0xb0; 0x54; 0xbb; 0x16;
  |]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = { enc : int array array; (* 11 round keys of 16 bytes *) }

(* GF(2^8) multiply by x (i.e., {02}) modulo x^8+x^4+x^3+x+1. *)
let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
  in
  go a b 0

let expand raw =
  if Bytes.length raw <> 16 then invalid_arg "Aes128.expand: key must be 16 bytes";
  (* 44 words of 4 bytes, laid out as 11 round keys of 16 bytes. *)
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- Char.code (Bytes.get raw ((4 * i) + j))
    done
  done;
  for i = 4 to 43 do
    let tmp = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord *)
      let t0 = tmp.(0) in
      tmp.(0) <- tmp.(1);
      tmp.(1) <- tmp.(2);
      tmp.(2) <- tmp.(3);
      tmp.(3) <- t0;
      (* SubWord + Rcon *)
      for j = 0 to 3 do
        tmp.(j) <- sbox.(tmp.(j))
      done;
      tmp.(0) <- tmp.(0) lxor rcon.((i / 4) - 1)
    end;
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor tmp.(j)
    done
  done;
  let enc = Array.make_matrix 11 16 0 in
  for r = 0 to 10 do
    for c = 0 to 3 do
      for j = 0 to 3 do
        enc.(r).((4 * c) + j) <- w.((4 * r) + c).(j)
      done
    done
  done;
  { enc }

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes state table =
  for i = 0 to 15 do
    state.(i) <- table.(state.(i))
  done

(* State layout: column-major as in FIPS 197, byte [4*c + r] is row r,
   column c. ShiftRows rotates row r left by r. *)
let shift_rows state =
  let get r c = state.((4 * c) + r) in
  let tmp = Array.make 16 0 in
  for r = 0 to 3 do
    for c = 0 to 3 do
      tmp.((4 * c) + r) <- get r ((c + r) mod 4)
    done
  done;
  Array.blit tmp 0 state 0 16

let inv_shift_rows state =
  let get r c = state.((4 * c) + r) in
  let tmp = Array.make 16 0 in
  for r = 0 to 3 do
    for c = 0 to 3 do
      tmp.((4 * c) + r) <- get r ((c - r + 4) mod 4)
    done
  done;
  Array.blit tmp 0 state 0 16

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c)
    and a1 = state.((4 * c) + 1)
    and a2 = state.((4 * c) + 2)
    and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- xtime a0 lxor gmul a1 3 lxor a2 lxor a3;
    state.((4 * c) + 1) <- a0 lxor xtime a1 lxor gmul a2 3 lxor a3;
    state.((4 * c) + 2) <- a0 lxor a1 lxor xtime a2 lxor gmul a3 3;
    state.((4 * c) + 3) <- gmul a0 3 lxor a1 lxor a2 lxor xtime a3
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c)
    and a1 = state.((4 * c) + 1)
    and a2 = state.((4 * c) + 2)
    and a3 = state.((4 * c) + 3) in
    state.(4 * c) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    state.((4 * c) + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    state.((4 * c) + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    state.((4 * c) + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let state_of_bytes b =
  let s = Array.make 16 0 in
  for i = 0 to 15 do
    s.(i) <- Char.code (Bytes.get b i)
  done;
  s

let bytes_of_state s =
  let b = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set b i (Char.chr s.(i))
  done;
  b

let encrypt_block k block =
  if Bytes.length block <> 16 then invalid_arg "Aes128.encrypt_block: block must be 16 bytes";
  let s = state_of_bytes block in
  add_round_key s k.enc.(0);
  for r = 1 to 9 do
    sub_bytes s sbox;
    shift_rows s;
    mix_columns s;
    add_round_key s k.enc.(r)
  done;
  sub_bytes s sbox;
  shift_rows s;
  add_round_key s k.enc.(10);
  bytes_of_state s

let decrypt_block k block =
  if Bytes.length block <> 16 then invalid_arg "Aes128.decrypt_block: block must be 16 bytes";
  let s = state_of_bytes block in
  add_round_key s k.enc.(10);
  inv_shift_rows s;
  sub_bytes s inv_sbox;
  for r = 9 downto 1 do
    add_round_key s k.enc.(r);
    inv_mix_columns s;
    inv_shift_rows s;
    sub_bytes s inv_sbox
  done;
  add_round_key s k.enc.(0);
  bytes_of_state s

let incr_counter block =
  let rec go i =
    if i < 0 then ()
    else
      let v = (Char.code (Bytes.get block i) + 1) land 0xff in
      Bytes.set block i (Char.chr v);
      if v = 0 then go (i - 1)
  in
  go 15

let ctr_transform k ~nonce data =
  if Bytes.length nonce <> 16 then invalid_arg "Aes128.ctr_transform: nonce must be 16 bytes";
  let counter = Bytes.copy nonce in
  let n = Bytes.length data in
  let out = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    let keystream = encrypt_block k counter in
    let chunk = min 16 (n - !pos) in
    for i = 0 to chunk - 1 do
      Bytes.set out (!pos + i)
        (Char.chr
           (Char.code (Bytes.get data (!pos + i))
           lxor Char.code (Bytes.get keystream i)))
    done;
    incr_counter counter;
    pos := !pos + 16
  done;
  out
