(** HMAC-SHA-256 (RFC 2104 / FIPS 198-1). *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key msg] is the 32-byte HMAC-SHA-256 of [msg] under [key].
    Keys longer than the 64-byte block size are hashed first, per the
    specification. *)

val mac_string : key:string -> string -> bytes
(** [mac_string ~key msg] is {!mac} on string inputs. *)

val verify : key:bytes -> bytes -> tag:bytes -> bool
(** [verify ~key msg ~tag] checks [tag] in constant time with respect
    to the tag contents. *)
