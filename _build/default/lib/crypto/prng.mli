(** Deterministic, splittable pseudo-random number generator.

    Based on SplitMix64. Every stochastic component of the simulator
    takes an explicit [Prng.t] so that experiments are reproducible
    from a single seed, and independent subsystems can draw from
    independent streams obtained with {!split}. *)

type t

val create : int -> t
(** [create seed] is a generator seeded deterministically from [seed]. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    the subsequent outputs of [t]. Advances [t]. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same stream as [t]. *)

val save : t -> int64
(** [save t] is the full internal state, for persistence. *)

val restore : int64 -> t
(** [restore s] resumes the stream saved by {!save}. *)

val bits64 : t -> int64
(** [bits64 t] is the next 64 raw bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential with the given mean.
    @raise Invalid_argument if [mean <= 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** [pareto t ~shape ~scale] samples a Pareto (Type I) variate — the
    continuous analogue of Zipf-distributed membership durations.
    @raise Invalid_argument if [shape <= 0] or [scale <= 0]. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
