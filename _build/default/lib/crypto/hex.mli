(** Hexadecimal encoding and decoding of byte strings. *)

val encode : bytes -> string
(** [encode b] is the lowercase hexadecimal representation of [b]. *)

val encode_string : string -> string
(** [encode_string s] is {!encode} applied to the bytes of [s]. *)

val decode : string -> bytes
(** [decode s] parses a hexadecimal string (upper or lower case) back
    into bytes.

    @raise Invalid_argument if [s] has odd length or contains a
    character outside [0-9a-fA-F]. *)
