(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }
let save t = t.state
let restore state = { state }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod n in
    if v - r > max_int - n + 1 then go () else r
  in
  go ()

let float t x =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let u = float_of_int bits /. 9007199254740992.0 in
  u *. x

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Prng.pareto: shape must be positive";
  if scale <= 0.0 then invalid_arg "Prng.pareto: scale must be positive";
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let bytes t n =
  let out = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    let v = ref (bits64 t) in
    let chunk = min 8 (n - !pos) in
    for i = 0 to chunk - 1 do
      Bytes.set out (!pos + i) (Char.chr (Int64.to_int (Int64.logand !v 0xffL)));
      v := Int64.shift_right_logical !v 8
    done;
    pos := !pos + chunk
  done;
  out

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
