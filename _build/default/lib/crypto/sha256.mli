(** Pure-OCaml SHA-256 (FIPS 180-4).

    Implemented from the specification; validated against the FIPS
    test vectors in the test suite. Used for key derivation, one-way
    function trees (OFT), and message authentication (via {!Hmac}). *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
(** [init ()] is a fresh hashing context. *)

val update : ctx -> bytes -> unit
(** [update ctx b] absorbs the bytes [b]. *)

val update_string : ctx -> string -> unit
(** [update_string ctx s] absorbs the bytes of [s]. *)

val finalize : ctx -> bytes
(** [finalize ctx] returns the 32-byte digest. The context must not be
    reused afterwards. *)

val digest : bytes -> bytes
(** [digest b] is the 32-byte SHA-256 digest of [b]. *)

val digest_string : string -> bytes
(** [digest_string s] is the 32-byte SHA-256 digest of [s]. *)

val hex : string -> string
(** [hex s] is the digest of [s] in lowercase hexadecimal. *)
