(** Arithmetic in GF(2^8) with the AES/Rijndael-compatible reduction
    polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), generator 2.

    This is the field underlying the Reed-Solomon erasure code used by
    the proactive-FEC rekey transport [YLZL01]. All values are ints in
    [0, 255]. *)

val add : int -> int -> int
(** Field addition (XOR). *)

val sub : int -> int -> int
(** Field subtraction (identical to addition in characteristic 2). *)

val mul : int -> int -> int
(** Field multiplication, table-based. *)

val div : int -> int -> int
(** Field division. @raise Division_by_zero if the divisor is 0. *)

val inv : int -> int
(** Multiplicative inverse. @raise Division_by_zero on 0. *)

val pow : int -> int -> int
(** [pow a n] is [a]{^ n} for [n >= 0]. [pow 0 0 = 1]. *)

val exp : int -> int
(** [exp i] is [generator]{^ i} (index taken mod 255). *)

val log : int -> int
(** Discrete log base the generator. @raise Invalid_argument on 0. *)
