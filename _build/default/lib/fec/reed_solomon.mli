(** Systematic Reed-Solomon erasure code over GF(2^8).

    Data is split into [k] equal-length shards. Each byte position
    across the shards is treated as [k] evaluations of a polynomial of
    degree [k - 1] at the field points [0 .. k-1]; parity shard [j] is
    the evaluation at point [k + j]. Any [k] distinct shards (data or
    parity) reconstruct the data — the classic MDS property needed by
    the proactive-FEC rekey transport, where the key server keeps
    generating fresh parity packets across retransmission rounds
    without repeating itself.

    Limits: [k + number_of_parity_shards <= 256]. *)

type code

val create : k:int -> code
(** [create ~k] prepares a code with [k] data shards.
    @raise Invalid_argument unless [1 <= k <= 255]. *)

val k : code -> int
(** Number of data shards. *)

val max_parity : code -> int
(** Largest parity index + 1 this code can produce (= 256 - k). *)

val parity_shard : code -> data:bytes array -> index:int -> bytes
(** [parity_shard c ~data ~index] computes parity shard [index]
    (0-based) for the [k] data shards.

    @raise Invalid_argument if [data] does not have [k] shards of
    equal length, or if [index] is out of range. *)

val encode : code -> data:bytes array -> nparity:int -> bytes array
(** [encode c ~data ~nparity] is parity shards [0 .. nparity-1]. *)

val decode : code -> shards:(int * bytes) list -> bytes array option
(** [decode c ~shards] reconstructs the [k] data shards from any [k]
    of the shards. Shard indices are global: [0 .. k-1] are data,
    [k + j] is parity [j]. Extra shards beyond [k] are ignored;
    duplicate indices count once. Returns [None] if fewer than [k]
    distinct shards are supplied.

    @raise Invalid_argument on inconsistent shard lengths or
    out-of-range indices. *)
