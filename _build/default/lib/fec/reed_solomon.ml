type code = { k : int }

let create ~k =
  if k < 1 || k > 255 then invalid_arg "Reed_solomon.create: k must be in [1, 255]";
  { k }

let k c = c.k
let max_parity c = 256 - c.k

let check_data c data =
  if Array.length data <> c.k then
    invalid_arg
      (Printf.sprintf "Reed_solomon: expected %d data shards, got %d" c.k (Array.length data));
  if c.k > 0 then begin
    let len = Bytes.length data.(0) in
    Array.iter
      (fun s ->
        if Bytes.length s <> len then invalid_arg "Reed_solomon: shards must have equal length")
      data
  end

(* Lagrange basis coefficients for evaluating at [x] a polynomial known
   by its values at the distinct points [xs]: result.(i) is l_i(x), so
   P(x) = sum_i coeffs.(i) * y_i. *)
let lagrange_coefficients xs x =
  let n = Array.length xs in
  let coeffs = Array.make n 0 in
  for i = 0 to n - 1 do
    let num = ref 1 and den = ref 1 in
    for m = 0 to n - 1 do
      if m <> i then begin
        num := Gf256.mul !num (Gf256.sub x xs.(m));
        den := Gf256.mul !den (Gf256.sub xs.(i) xs.(m))
      end
    done;
    coeffs.(i) <- Gf256.div !num !den
  done;
  coeffs

let combine shards coeffs len =
  let out = Bytes.make len '\000' in
  Array.iteri
    (fun i shard ->
      let c = coeffs.(i) in
      if c <> 0 then
        for pos = 0 to len - 1 do
          Bytes.set out pos
            (Char.chr
               (Gf256.add (Char.code (Bytes.get out pos)) (Gf256.mul c (Char.code (Bytes.get shard pos)))))
        done)
    shards;
  out

let parity_shard c ~data ~index =
  check_data c data;
  if index < 0 || index >= max_parity c then
    invalid_arg (Printf.sprintf "Reed_solomon.parity_shard: index %d out of range" index);
  let len = Bytes.length data.(0) in
  let xs = Array.init c.k (fun i -> i) in
  let coeffs = lagrange_coefficients xs (c.k + index) in
  combine data coeffs len

let encode c ~data ~nparity =
  if nparity < 0 || nparity > max_parity c then
    invalid_arg "Reed_solomon.encode: nparity out of range";
  Array.init nparity (fun j -> parity_shard c ~data ~index:j)

let decode c ~shards =
  (* Deduplicate by index, validate, keep the first k distinct. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (idx, shard) ->
      if idx < 0 || idx > 255 then invalid_arg "Reed_solomon.decode: shard index out of range";
      if not (Hashtbl.mem seen idx) then Hashtbl.add seen idx shard)
    shards;
  if Hashtbl.length seen < c.k then None
  else begin
    let available = Hashtbl.fold (fun idx shard acc -> (idx, shard) :: acc) seen [] in
    let available = List.sort (fun (a, _) (b, _) -> compare a b) available in
    let chosen = Array.of_list (List.filteri (fun i _ -> i < c.k) available) in
    let len = Bytes.length (snd chosen.(0)) in
    Array.iter
      (fun (_, shard) ->
        if Bytes.length shard <> len then
          invalid_arg "Reed_solomon.decode: shards must have equal length")
      chosen;
    let xs = Array.map fst chosen in
    let values = Array.map snd chosen in
    let recover_point x =
      (* If the data shard itself is among the chosen, reuse it. *)
      match Array.to_list chosen |> List.assoc_opt x with
      | Some shard -> Bytes.copy shard
      | None -> combine values (lagrange_coefficients xs x) len
    in
    Some (Array.init c.k recover_point)
  end
