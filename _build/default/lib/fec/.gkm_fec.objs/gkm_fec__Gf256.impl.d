lib/fec/gf256.ml: Array
