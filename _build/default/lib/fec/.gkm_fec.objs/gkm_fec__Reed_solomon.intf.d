lib/fec/reed_solomon.mli:
