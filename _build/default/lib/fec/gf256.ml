(* GF(2^8) with polynomial 0x11d and generator 2. Exp/log tables are
   built once at module initialization. *)

let poly = 0x11d

let exp_table, log_table =
  let exp_t = Array.make 512 0 in
  let log_t = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp_t.(i) <- !x;
    log_t.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor poly
  done;
  (* Duplicate to avoid a modulo in [mul]. *)
  for i = 255 to 511 do
    exp_t.(i) <- exp_t.(i - 255)
  done;
  (exp_t, log_t)

let add a b = a lxor b
let sub = add

let mul a b = if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero;
  exp_table.(255 - log_table.(a))

let div a b =
  if b = 0 then raise Division_by_zero;
  if a = 0 then 0 else exp_table.(log_table.(a) + 255 - log_table.(b))

let pow a n =
  if n = 0 then 1
  else if a = 0 then 0
  else exp_table.(log_table.(a) * n mod 255)

let exp i = exp_table.(((i mod 255) + 255) mod 255)

let log a =
  if a = 0 then invalid_arg "Gf256.log: log of zero";
  log_table.(a)
