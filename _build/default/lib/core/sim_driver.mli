(** End-to-end discrete simulation drivers that cross-check the
    paper's analytic figures against the executable system: real key
    trees, real key wrapping, synthetic membership churn, and lossy
    multicast delivery. *)

(** {1 Two-partition experiment (Figs. 3-5 cross-check)} *)

type partition_result = {
  kind : Scheme.kind;
  intervals : int;  (** measured intervals (after warm-up) *)
  mean_keys : float;  (** encrypted keys per rekey interval *)
  ci95 : float;  (** 95% confidence half-width of the mean *)
  mean_size : float;  (** average group size over the run *)
  mean_s_size : float;  (** average S-partition population *)
}

val run_partition :
  ?degree:int ->
  ?seed:int ->
  n:int ->
  alpha:float ->
  ms:float ->
  ml:float ->
  tp:float ->
  s_period:int ->
  warmup:int ->
  intervals:int ->
  kind:Scheme.kind ->
  unit ->
  partition_result
(** Drive a {!Scheme} with the two-class workload at steady state for
    [warmup + intervals] rekey intervals and measure the per-interval
    rekeying cost over the last [intervals]. *)

(** {1 Loss-homogenization experiment (Figs. 6-7 cross-check)} *)

type organization =
  | Org_one  (** one key tree *)
  | Org_random of int  (** k randomly filled trees *)
  | Org_homogenized of float  (** two trees split at the threshold *)
  | Org_mispartitioned of { threshold : float; beta : float }
      (** loss-homogenized with a fraction beta of each side misreporting *)

type transport =
  | Wka_bkr_transport
  | Multi_send_transport of int  (** replication *)
  | Fec_transport of float  (** proactivity rho *)

type loss_result = {
  mean_keys_sent : float;  (** key copies multicast until full delivery *)
  mean_bandwidth : float;  (** including FEC parity, in key slots *)
  mean_packets : float;
  mean_rounds : float;
  undelivered : int;  (** total receivers left short across trials *)
}

val run_loss :
  ?degree:int ->
  ?seed:int ->
  ?trials:int ->
  ?burstiness:float ->
  n:int ->
  l:int ->
  alpha:float ->
  ph:float ->
  pl:float ->
  organization:organization ->
  transport:transport ->
  unit ->
  loss_result
(** Build an [n]-member group with a two-class loss population, batch
    [l] uniformly chosen departures, run one group rekeying, and
    deliver the rekey message over the lossy channel with the chosen
    transport. Averages over [trials] independent populations
    (default 5). [burstiness] switches every receiver from Bernoulli
    to a Gilbert-Elliott channel with the same mean loss (the A2
    ablation of DESIGN.md). *)
