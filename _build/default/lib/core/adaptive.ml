module Fit = Gkm_workload.Fit
module Two_partition = Gkm_analytic.Two_partition
module Params = Gkm_analytic.Params

type config = { refit_every : int; min_observations : int; k_max : int }

let default_config = { refit_every = 30; min_observations = 100; k_max = 30 }

type t = {
  cfg : config;
  scheme : Scheme.t;
  tp : float;
  join_interval : (int, int) Hashtbl.t; (* member -> admission interval *)
  mutable durations : float list; (* completed memberships, in seconds *)
  mutable n_durations : int;
  mutable fit : Fit.mixture option;
  mutable recommendation : (Scheme.kind * int) option;
  mutable refits : int;
}

let create ?(config = default_config) scheme ~tp =
  if config.refit_every < 1 then invalid_arg "Adaptive.create: refit_every must be >= 1";
  if tp <= 0.0 then invalid_arg "Adaptive.create: rekey interval must be positive";
  {
    cfg = config;
    scheme;
    tp;
    join_interval = Hashtbl.create 256;
    durations = [];
    n_durations = 0;
    fit = None;
    recommendation = None;
    refits = 0;
  }

let register t ~member ~cls =
  let key = Scheme.register t.scheme ~member ~cls in
  (* Admission happens at the end of the current interval. *)
  Hashtbl.replace t.join_interval member (Scheme.interval t.scheme + 1);
  key

let enqueue_departure t m =
  Scheme.enqueue_departure t.scheme m;
  match Hashtbl.find_opt t.join_interval m with
  | Some joined ->
      let lived = Scheme.interval t.scheme + 1 - joined in
      if lived > 0 then begin
        t.durations <- (float_of_int lived *. t.tp) :: t.durations;
        t.n_durations <- t.n_durations + 1
      end;
      Hashtbl.remove t.join_interval m
  | None -> ()

let analytic_params t (m : Fit.mixture) =
  {
    Params.default with
    n = max 2 (Scheme.size t.scheme);
    d = (Scheme.config t.scheme).degree;
    tp = t.tp;
    alpha = m.alpha;
    ms = m.ms;
    ml = m.ml;
  }

let refit t =
  if t.n_durations >= t.cfg.min_observations then begin
    let m = Fit.em t.durations in
    t.fit <- Some m;
    t.refits <- t.refits + 1;
    let p = analytic_params t m in
    let candidates =
      List.map
        (fun (kind, scheme) ->
          let k, cost = Two_partition.best_k p scheme ~k_max:t.cfg.k_max in
          (kind, k, cost))
        [
          (Scheme.One_keytree, Two_partition.One_keytree);
          (Scheme.Qt, Two_partition.Qt);
          (Scheme.Tt, Two_partition.Tt);
        ]
    in
    let best_kind, best_k, _ =
      List.fold_left
        (fun (bk, bkk, bc) (kind, k, c) -> if c < bc then (kind, k, c) else (bk, bkk, bc))
        (Scheme.One_keytree, 0, infinity)
        candidates
    in
    t.recommendation <- Some (best_kind, best_k);
    (* Apply the part that is cheap to apply live: the S-period of the
       running scheme (when it uses one). *)
    match (Scheme.config t.scheme).kind with
    | Scheme.Qt | Scheme.Tt -> (
        match List.find_opt (fun (kind, _, _) -> kind = (Scheme.config t.scheme).kind) candidates with
        | Some (_, k, _) -> Scheme.set_s_period t.scheme k
        | None -> ())
    | Scheme.One_keytree | Scheme.Pt -> ()
  end

let rekey t =
  let msg = Scheme.rekey t.scheme in
  if Scheme.interval t.scheme mod t.cfg.refit_every = 0 then refit t;
  msg

let scheme t = t.scheme
let observations t = t.n_durations
let last_fit t = t.fit
let recommendation t = t.recommendation
let refits t = t.refits
