lib/core/scheme.ml: Gkm_crypto Gkm_keytree Gkm_lkh Hashtbl List Logs Option Printf
