lib/core/loss_tree.ml: Array Gkm_crypto Gkm_keytree Gkm_lkh Hashtbl List Option Printf Scheme
