lib/core/session.ml: Gkm_crypto Gkm_keytree Gkm_lkh Gkm_net Gkm_sim Gkm_transport Gkm_workload Hashtbl List Scheme
