lib/core/sim_driver.mli: Scheme
