lib/core/gkm.ml: Adaptive Loss_tree Scheme Session Sim_driver
