lib/core/adaptive.mli: Gkm_crypto Gkm_lkh Gkm_workload Scheme
