lib/core/session.mli: Scheme
