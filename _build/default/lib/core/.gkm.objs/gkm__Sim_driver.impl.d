lib/core/sim_driver.ml: Array Float Fun Gkm_crypto Gkm_net Gkm_sim Gkm_transport Gkm_workload Hashtbl List Loss_tree Scheme
