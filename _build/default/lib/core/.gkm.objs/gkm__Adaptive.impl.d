lib/core/adaptive.ml: Gkm_analytic Gkm_workload Hashtbl List Scheme
