lib/core/loss_tree.mli: Gkm_crypto Gkm_keytree Gkm_lkh
