lib/core/scheme.mli: Gkm_crypto Gkm_keytree Gkm_lkh
