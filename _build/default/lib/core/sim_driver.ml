module Prng = Gkm_crypto.Prng
module Stats = Gkm_sim.Stats
module Membership = Gkm_workload.Membership
module Channel = Gkm_net.Channel
module Loss_model = Gkm_net.Loss_model
module Job = Gkm_transport.Job
module Delivery = Gkm_transport.Delivery

type partition_result = {
  kind : Scheme.kind;
  intervals : int;
  mean_keys : float;
  ci95 : float;
  mean_size : float;
  mean_s_size : float;
}

let run_partition ?(degree = 4) ?(seed = 1) ~n ~alpha ~ms ~ml ~tp ~s_period ~warmup ~intervals
    ~kind () =
  if warmup < 0 || intervals <= 0 then
    invalid_arg "Sim_driver.run_partition: bad interval counts";
  let cfg = Membership.of_params ~n_target:n ~alpha ~ms ~ml ~tp in
  let rng = Prng.create seed in
  let buckets = Membership.intervals cfg ~rng ~n_intervals:(warmup + intervals) in
  let scheme = Scheme.create { kind; degree; s_period; seed = seed + 17 } in
  let keys = Stats.create () and sizes = Stats.create () and s_sizes = Stats.create () in
  List.iteri
    (fun i (joins, departs) ->
      List.iter
        (fun (m, cls) ->
          let cls = match cls with Membership.Short -> Scheme.Short | Long -> Scheme.Long in
          ignore (Scheme.register scheme ~member:m ~cls))
        joins;
      List.iter
        (fun m ->
          (* Departures of members whose join was cancelled in an
             earlier interval (joined and left within one bucket) have
             nothing to do. *)
          if
            Scheme.is_member scheme m
            || List.exists (fun (j, _) -> j = m) joins
          then Scheme.enqueue_departure scheme m)
        departs;
      ignore (Scheme.rekey scheme);
      if i >= warmup then begin
        Stats.add keys (float_of_int (Scheme.last_cost scheme));
        Stats.add sizes (float_of_int (Scheme.size scheme));
        Stats.add s_sizes (float_of_int (Scheme.s_size scheme))
      end)
    buckets;
  {
    kind;
    intervals;
    mean_keys = Stats.mean keys;
    ci95 = Stats.ci95_halfwidth keys;
    mean_size = Stats.mean sizes;
    mean_s_size = Stats.mean s_sizes;
  }

type organization =
  | Org_one
  | Org_random of int
  | Org_homogenized of float
  | Org_mispartitioned of { threshold : float; beta : float }

type transport =
  | Wka_bkr_transport
  | Multi_send_transport of int
  | Fec_transport of float

type loss_result = {
  mean_keys_sent : float;
  mean_bandwidth : float;
  mean_packets : float;
  mean_rounds : float;
  undelivered : int;
}

let run_loss_once ~degree ~seed ~burstiness ~n ~l ~alpha ~ph ~pl ~organization ~transport =
  let rng = Prng.create seed in
  let model p =
    match burstiness with
    | None -> Loss_model.bernoulli p
    | Some b -> Loss_model.bursty ~mean_loss:p ~burstiness:b
  in
  let channel, high, low =
    Channel.two_class ~rng:(Prng.split rng) ~n ~alpha ~high:(model ph) ~low:(model pl)
  in
  let assignment =
    match organization with
    | Org_one -> Loss_tree.Random 1
    | Org_random k -> Loss_tree.Random k
    | Org_homogenized threshold | Org_mispartitioned { threshold; _ } ->
        Loss_tree.By_loss [ threshold ]
  in
  let org = Loss_tree.create { degree; seed = seed + 31; assignment } in
  (* Decide each member's *reported* loss (misreporting swaps a beta
     fraction across the two classes, keeping tree sizes fixed). *)
  let reported = Hashtbl.create n in
  List.iter (fun m -> Hashtbl.replace reported m ph) high;
  List.iter (fun m -> Hashtbl.replace reported m pl) low;
  (match organization with
  | Org_mispartitioned { beta; _ } ->
      let swap = int_of_float (Float.round (beta *. float_of_int (List.length high))) in
      let swap = min swap (List.length low) in
      List.iteri (fun i m -> if i < swap then Hashtbl.replace reported m pl) high;
      List.iteri (fun i m -> if i < swap then Hashtbl.replace reported m ph) low
  | Org_one | Org_random _ | Org_homogenized _ -> ());
  for m = 0 to n - 1 do
    ignore (Loss_tree.register org ~member:m ~loss:(Hashtbl.find reported m))
  done;
  ignore (Loss_tree.rekey org);
  (* Batch l uniformly chosen departures. *)
  let order = Array.init n Fun.id in
  Prng.shuffle rng order;
  for i = 0 to min l n - 1 do
    Loss_tree.enqueue_departure org order.(i)
  done;
  match Loss_tree.rekey org with
  | None -> invalid_arg "Sim_driver.run_loss: empty rekey batch"
  | Some msg ->
      let job = Job.of_rekey ~channel ~trees:(Loss_tree.trees org) msg in
      (match transport with
      | Wka_bkr_transport -> Gkm_transport.Wka_bkr.deliver ~channel job
      | Multi_send_transport replication ->
          Gkm_transport.Multi_send.deliver
            ~config:{ Gkm_transport.Multi_send.default with replication }
            ~channel job
      | Fec_transport proactivity ->
          Gkm_transport.Proactive_fec.deliver
            ~config:{ Gkm_transport.Proactive_fec.default with proactivity }
            ~channel job)

let run_loss ?(degree = 4) ?(seed = 1) ?(trials = 5) ?burstiness ~n ~l ~alpha ~ph ~pl
    ~organization ~transport () =
  if trials < 1 then invalid_arg "Sim_driver.run_loss: need at least one trial";
  let keys = Stats.create ()
  and bw = Stats.create ()
  and packets = Stats.create ()
  and rounds = Stats.create () in
  let undelivered = ref 0 in
  for trial = 0 to trials - 1 do
    let outcome =
      run_loss_once ~degree ~seed:(seed + (trial * 7919)) ~burstiness ~n ~l ~alpha ~ph ~pl
        ~organization ~transport
    in
    Stats.add keys (float_of_int outcome.Delivery.keys);
    Stats.add bw (float_of_int outcome.bandwidth_keys);
    Stats.add packets (float_of_int outcome.packets);
    Stats.add rounds (float_of_int outcome.rounds);
    undelivered := !undelivered + outcome.undelivered
  done;
  {
    mean_keys_sent = Stats.mean keys;
    mean_bandwidth = Stats.mean bw;
    mean_packets = Stats.mean packets;
    mean_rounds = Stats.mean rounds;
    undelivered = !undelivered;
  }
