(** Online parameter adaptation (Section 3.4).

    "At the beginning of a session, the key server just maintains one
    key tree; later, from its collected trace data it can compute the
    group statistics such as Ms, Ml, and alpha. Then using our
    analytic model, the key server can choose the best scheme to use.
    And this process can be repeated periodically."

    This controller wraps a running {!Scheme}, observes completed
    membership durations, periodically re-fits the two-exponential
    mixture ({!Gkm_workload.Fit}), evaluates the analytic model
    ({!Gkm_analytic.Two_partition}) and retunes the live S-period.
    Scheme *kind* switches are reported as recommendations rather than
    applied (re-homing every member is a full-group rekey storm a
    production server would schedule off-peak). *)

type config = {
  refit_every : int;  (** intervals between refits *)
  min_observations : int;  (** durations needed before the first refit *)
  k_max : int;  (** S-period search bound *)
}

val default_config : config
(** Refit every 30 intervals, after 100 observations, K <= 30. *)

type t

val create : ?config:config -> Scheme.t -> tp:float -> t
(** Wrap a live scheme. [tp] is the rekey interval in seconds (the
    unit the analytic model measures durations against). *)

val register : t -> member:int -> cls:Scheme.member_class -> Gkm_crypto.Key.t
val enqueue_departure : t -> int -> unit

val rekey : t -> Gkm_lkh.Rekey_msg.t option
(** Advance one interval: delegates to the scheme, records completed
    durations, and refits/retunes when due. *)

val scheme : t -> Scheme.t

val observations : t -> int
(** Completed membership durations recorded so far. *)

val last_fit : t -> Gkm_workload.Fit.mixture option
(** The mixture from the most recent refit, if any. *)

val recommendation : t -> (Scheme.kind * int) option
(** Best (scheme kind, K) under the analytic model at the last refit. *)

val refits : t -> int
