lib/lkh/oft.ml: Bytes Char Gkm_crypto Hashtbl List Option Printf String
