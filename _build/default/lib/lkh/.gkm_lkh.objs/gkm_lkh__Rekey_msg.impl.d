lib/lkh/rekey_msg.ml: Bytes Format Gkm_crypto Gkm_keytree List
