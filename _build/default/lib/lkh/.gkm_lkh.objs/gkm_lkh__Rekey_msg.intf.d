lib/lkh/rekey_msg.mli: Format Gkm_keytree
