lib/lkh/server.mli: Gkm_crypto Gkm_keytree Rekey_msg
