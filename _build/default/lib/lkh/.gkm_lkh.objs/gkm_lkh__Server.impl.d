lib/lkh/server.ml: Buffer Bytes Gkm_crypto Gkm_keytree List Logs Printf Rekey_msg Result
