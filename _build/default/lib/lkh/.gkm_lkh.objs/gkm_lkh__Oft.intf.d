lib/lkh/oft.mli:
