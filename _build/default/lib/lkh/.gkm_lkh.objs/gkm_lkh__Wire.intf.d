lib/lkh/wire.mli: Gkm_crypto Rekey_msg
