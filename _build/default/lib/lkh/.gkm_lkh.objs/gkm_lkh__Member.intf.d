lib/lkh/member.mli: Gkm_crypto Rekey_msg
