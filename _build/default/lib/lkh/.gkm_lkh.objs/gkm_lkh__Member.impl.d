lib/lkh/member.ml: Gkm_crypto Hashtbl List Option Rekey_msg
