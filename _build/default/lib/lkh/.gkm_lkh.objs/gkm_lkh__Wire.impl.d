lib/lkh/wire.ml: Bytes Gkm_crypto List Printf Rekey_msg Result
