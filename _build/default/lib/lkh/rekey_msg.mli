(** The rekey message: the set of encrypted keys produced by one
    (batched) group rekeying, before it is packed into packets by a
    rekey transport protocol.

    Each entry is a single wrapping E_{K_child}(K_node). A member is
    interested in exactly the entries whose wrapping key it holds —
    the "sparseness property" the reliable rekey transports exploit. *)

type entry = {
  target_node : int;  (** node id of the key being distributed *)
  target_version : int;  (** tree epoch of the fresh key *)
  level : int;  (** depth of the target node; root = 0 *)
  wrapped_under : int;  (** node id of the wrapping (child) key *)
  receivers : int;  (** number of members that need this entry *)
  ciphertext : bytes;  (** [Key.wrap ~kek:child target] *)
}

type t = {
  epoch : int;
  root_node : int;  (** node id of the group key after this rekeying *)
  entries : entry list;  (** deepest targets first *)
}

val of_updates : epoch:int -> root_node:int -> Gkm_keytree.Keytree.update list -> t
(** Performs the actual encryptions for every wrap of every update. *)

val size_keys : t -> int
(** Number of encrypted keys — the paper's bandwidth metric. *)

val size_bytes : t -> int
(** Wire-size estimate: per-entry header (three 4-byte ids and a
    4-byte version) plus ciphertext. *)

val entry_id : entry -> int * int
(** [(target_node, wrapped_under)] — unique within a message; used by
    transports to track which entries a receiver still misses. *)

val pp : Format.formatter -> t -> unit
