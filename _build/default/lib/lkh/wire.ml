module Key = Gkm_crypto.Key
module Hmac = Gkm_crypto.Hmac

let magic = "GKRM"
let format_version = 1
let header_size = 4 + 1 + 4 + 4 + 4
let entry_fixed_size = 4 + 4 + 2 + 4 + 4 + 2
let tag_size = 32

let decoded_size (msg : Rekey_msg.t) =
  header_size
  + List.fold_left
      (fun acc (e : Rekey_msg.entry) -> acc + entry_fixed_size + Bytes.length e.ciphertext)
      0 msg.entries
  + tag_size

open Gkm_crypto.Bytes_io

let encode ~auth_key (msg : Rekey_msg.t) =
  let size = decoded_size msg in
  let buf = Bytes.create size in
  Bytes.blit_string magic 0 buf 0 4;
  let pos = ref 4 in
  pos := put_u8 buf !pos format_version;
  pos := put_i32 buf !pos msg.epoch;
  pos := put_i32 buf !pos msg.root_node;
  pos := put_i32 buf !pos (List.length msg.entries);
  List.iter
    (fun (e : Rekey_msg.entry) ->
      pos := put_i32 buf !pos e.target_node;
      pos := put_i32 buf !pos e.target_version;
      pos := put_u16 buf !pos e.level;
      pos := put_i32 buf !pos e.wrapped_under;
      pos := put_i32 buf !pos e.receivers;
      pos := put_u16 buf !pos (Bytes.length e.ciphertext);
      Bytes.blit e.ciphertext 0 buf !pos (Bytes.length e.ciphertext);
      pos := !pos + Bytes.length e.ciphertext)
    msg.entries;
  let body = Bytes.sub buf 0 !pos in
  let tag = Hmac.mac ~key:(Key.to_bytes auth_key) body in
  Bytes.blit tag 0 buf !pos tag_size;
  buf

let decode ~auth_key buf =
  let len = Bytes.length buf in
  let ( let* ) = Result.bind in
  let need pos n what =
    if pos + n > len - tag_size then Error (Printf.sprintf "truncated %s" what) else Ok ()
  in
  if len < header_size + tag_size then Error "message shorter than header + tag"
  else if Bytes.sub_string buf 0 4 <> magic then Error "bad magic"
  else begin
    (* Authenticate before trusting any field beyond the length. *)
    let body = Bytes.sub buf 0 (len - tag_size) in
    let tag = Bytes.sub buf (len - tag_size) tag_size in
    if not (Hmac.verify ~key:(Key.to_bytes auth_key) body ~tag) then
      Error "authentication tag mismatch"
    else begin
      let version = get_u8 buf 4 in
      if version <> format_version then Error (Printf.sprintf "unsupported version %d" version)
      else begin
        let epoch = get_i32 buf 5 in
        let root_node = get_i32 buf 9 in
        let count = get_i32 buf 13 in
        if count < 0 then Error "negative entry count"
        else begin
          let rec read_entries pos remaining acc =
            if remaining = 0 then
              if pos = len - tag_size then Ok (List.rev acc)
              else Error "trailing bytes after entries"
            else
              let* () = need pos entry_fixed_size "entry header" in
              let target_node = get_i32 buf pos in
              let target_version = get_i32 buf (pos + 4) in
              let level = get_u16 buf (pos + 8) in
              let wrapped_under = get_i32 buf (pos + 10) in
              let receivers = get_i32 buf (pos + 14) in
              let ct_len = get_u16 buf (pos + 18) in
              let pos = pos + entry_fixed_size in
              let* () = need pos ct_len "ciphertext" in
              let ciphertext = Bytes.sub buf pos ct_len in
              let entry =
                {
                  Rekey_msg.target_node;
                  target_version;
                  level;
                  wrapped_under;
                  receivers;
                  ciphertext;
                }
              in
              read_entries (pos + ct_len) (remaining - 1) (entry :: acc)
          in
          let* entries = read_entries header_size count [] in
          Ok { Rekey_msg.epoch; root_node; entries }
        end
      end
    end
  end
