(** One-way function trees (OFT) [BM00] — the alternative key-tree
    scheme the paper names alongside LKH ("the basic ideas behind our
    approaches are also applicable for these group key management
    protocols").

    A binary tree where every interior secret is *derived* from its
    children: [x_v = H(g(x_left) xor g(x_right))] with [g] a one-way
    blinding function. A member holds its own leaf secret plus the
    blinded secrets of the siblings along its path, from which it
    computes every ancestor secret including the root (the DEK).
    Rekeying therefore multicasts about [log2 N] encrypted *blinded*
    values per membership change — half of binary LKH's [2 log2 N]
    encrypted keys.

    The server tracks the exact view (leaf secret + blinded values +
    path shape) it has delivered to each member; {!compute_root} is
    the pure member-side computation over such a view, which lets the
    tests state forward/backward secrecy directly: a frozen evicted
    view must not compute the current root. *)

type t

val create : ?seed:int -> unit -> t

val size : t -> int
val is_member : t -> int -> bool
val members : t -> int list

val join : t -> int -> unit
(** Admit a member (individual rekeying).
    @raise Invalid_argument if already a member. *)

val leave : t -> int -> unit
(** Evict a member: the sibling subtree is promoted, one of its leaves
    receives a fresh secret, and the changed blinded values propagate
    to the root. @raise Invalid_argument if not a member. *)

val batch : t -> departed:int list -> joined:int list -> unit
(** Batched rekeying [SKJ00, YLZL01] for OFT: all departures and joins
    are processed together and each changed blinded value is
    multicast exactly once, so overlapping paths share their upper
    levels just as batched LKH shares refreshed keys. Cost counters
    report the whole batch as one operation.
    @raise Invalid_argument on duplicates, departures of non-members,
    or joins of existing members. *)

val root_secret : t -> bytes option
(** The current group secret (DEK); [None] on an empty group. *)

val last_broadcast_cost : t -> int
(** Encrypted blinded values multicast by the last operation. *)

val last_unicast_cost : t -> int
(** Values delivered point-to-point by the last operation (joiner
    bootstrap, fresh sibling secret). *)

val cumulative_broadcast : t -> int

type view
(** What one member holds: its leaf secret, its path shape and the
    sibling blinded values. *)

val view : t -> int -> view
(** Copy of a live member's current view. @raise Not_found. *)

val evicted_view : t -> int -> view option
(** The view a departed member held at eviction time (frozen). *)

val compute_root : view -> bytes option
(** Member-side derivation of the root secret from a view alone;
    [None] if the view is missing a needed blinded value. *)

val check : t -> (unit, string) result
(** Invariants: interior secrets equal the hash of their children's
    blinds, sizes are consistent, and every live member's view
    computes the current root. *)
