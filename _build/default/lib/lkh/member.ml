module Key = Gkm_crypto.Key

type t = {
  id : int;
  keys : (int, Key.t * int) Hashtbl.t; (* node id -> key, version *)
  mutable root_node : int option;
}

let create ~id ~leaf_node ~individual_key =
  let keys = Hashtbl.create 16 in
  Hashtbl.replace keys leaf_node (individual_key, 0);
  { id; keys; root_node = None }

let id t = t.id

let install_path t path =
  List.iter (fun (node, key) -> Hashtbl.replace t.keys node (key, 0)) path

let set_root t node = t.root_node <- Some node
let knows t node = Hashtbl.mem t.keys node
let key_of t node = Option.map fst (Hashtbl.find_opt t.keys node)

let has_version t node version =
  match Hashtbl.find_opt t.keys node with
  | Some (_, v) -> v >= version
  | None -> false

let interested t (e : Rekey_msg.entry) =
  knows t e.wrapped_under && not (has_version t e.target_node e.target_version)

let process_entry t (e : Rekey_msg.entry) =
  match Hashtbl.find_opt t.keys e.wrapped_under with
  | None -> false
  | Some (kek, _) ->
      if has_version t e.target_node e.target_version then false
      else begin
        (* A stale wrapping key (e.g. after migrating out of a
           partition) fails the integrity check and is ignored. *)
        match Key.unwrap ~kek e.ciphertext with
        | Some key ->
            Hashtbl.replace t.keys e.target_node (key, e.target_version);
            true
        | None -> false
      end

let process t (msg : Rekey_msg.t) =
  t.root_node <- Some msg.root_node;
  List.fold_left (fun acc e -> if process_entry t e then acc + 1 else acc) 0 msg.entries

let group_key t =
  match t.root_node with
  | None -> None
  | Some node -> Option.map fst (Hashtbl.find_opt t.keys node)

let known_keys t = Hashtbl.length t.keys

let forget_stale t ~keep =
  let stale = Hashtbl.fold (fun node _ acc -> if keep node then acc else node :: acc) t.keys [] in
  List.iter (Hashtbl.remove t.keys) stale
