(** Wire format for rekey messages.

    A rekey message is multicast to untrusted networks, so the
    encoding is authenticated: the key server appends an
    HMAC-SHA-256 tag under a group authentication key distributed
    alongside the DEK. Layout (big-endian):

    {v
    magic   4 bytes  "GKRM"
    version 1 byte   format version (1)
    epoch   4 bytes
    root    4 bytes  (signed: synthetic ids are negative)
    count   4 bytes
    count * entry:
      target   4 bytes (signed)
      version  4 bytes
      level    2 bytes
      wrapped  4 bytes (signed)
      receivers 4 bytes
      ct_len   2 bytes
      ct       ct_len bytes
    tag     32 bytes HMAC-SHA-256 over everything above
    v} *)

val encode : auth_key:Gkm_crypto.Key.t -> Rekey_msg.t -> bytes
(** Serialize and authenticate.
    @raise Invalid_argument if a field exceeds its encoding range. *)

val decode : auth_key:Gkm_crypto.Key.t -> bytes -> (Rekey_msg.t, string) result
(** Parse and verify; [Error] describes the first problem found
    (bad magic, truncation, tag mismatch, ...). Decoding never
    raises on malformed input. *)

val decoded_size : Rekey_msg.t -> int
(** Exact wire size of the encoding. *)
