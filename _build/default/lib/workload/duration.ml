module Prng = Gkm_crypto.Prng

type t = Exponential of float | Pareto of { shape : float; scale : float } | Fixed of float

let exponential mean =
  if mean <= 0.0 then invalid_arg "Duration.exponential: mean must be positive";
  Exponential mean

let pareto ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Duration.pareto: parameters must be positive";
  Pareto { shape; scale }

let fixed v =
  if v < 0.0 then invalid_arg "Duration.fixed: negative duration";
  Fixed v

let sample t rng =
  match t with
  | Exponential mean -> Prng.exponential rng ~mean
  | Pareto { shape; scale } -> Prng.pareto rng ~shape ~scale
  | Fixed v -> v

let mean = function
  | Exponential mean -> mean
  | Pareto { shape; scale } -> if shape <= 1.0 then infinity else shape *. scale /. (shape -. 1.0)
  | Fixed v -> v

let survival t x =
  match t with
  | Exponential mean -> if x <= 0.0 then 1.0 else exp (-.x /. mean)
  | Pareto { shape; scale } -> if x <= scale then 1.0 else (scale /. x) ** shape
  | Fixed v -> if x < v then 1.0 else 0.0
