(** The two-class open membership workload of Section 3.3.1.

    Joins arrive as a Poisson process; each joiner is short-duration
    (class Cs, probability [alpha]) or long-duration (class Cl) and
    stays for an exponential time with the class mean. The generator
    starts in steady state: the initial population is seeded with the
    stationary class mix, and by memorylessness their residual
    lifetimes are again exponential. *)

type cls = Short | Long

type config = {
  n_target : int;  (** steady-state group size *)
  alpha : float;  (** fraction of joins from the short class *)
  ms : float;  (** mean short duration, seconds *)
  ml : float;  (** mean long duration, seconds *)
  tp : float;  (** rekey interval, seconds (sets the join rate) *)
}

val of_params : n_target:int -> alpha:float -> ms:float -> ml:float -> tp:float -> config
(** @raise Invalid_argument on invalid parameters. *)

type event = { time : float; member : int; cls : cls; kind : [ `Join | `Depart ] }

val joins_per_interval : config -> float
(** The steady-state [J] of the analytic model: expected joins (and
    departures) per rekey interval. *)

val stationary_short_fraction : config -> float
(** Expected fraction of the resident population that is short-class
    ([Ncs / N] of the analytic model). *)

val generate : config -> rng:Gkm_crypto.Prng.t -> horizon:float -> event list
(** [generate cfg ~rng ~horizon] is the chronologically sorted event
    list over [0, horizon]. Members present at time 0 appear as joins
    at time 0. Ties are ordered joins-before-departs per member.
    Member ids are unique and dense from 0. *)

val intervals :
  config -> rng:Gkm_crypto.Prng.t -> n_intervals:int ->
  ((int * cls) list * int list) list
(** Batched view: for each of [n_intervals] rekey intervals, the joins
    (with their class) and the departures falling inside it, ready to
    feed a batched key server. A member joining and departing within
    the same interval appears in both lists. *)
