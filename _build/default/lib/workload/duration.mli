(** Membership-duration distributions.

    [AA97] observed that MBone session membership durations fit
    exponential or Zipf-like distributions; the paper's model uses a
    two-exponential mixture. Pareto is the continuous Zipf
    analogue. *)

type t =
  | Exponential of float  (** mean *)
  | Pareto of { shape : float; scale : float }
  | Fixed of float

val exponential : float -> t
(** @raise Invalid_argument if the mean is not positive. *)

val pareto : shape:float -> scale:float -> t
(** @raise Invalid_argument on non-positive parameters. *)

val fixed : float -> t
(** @raise Invalid_argument if negative. *)

val sample : t -> Gkm_crypto.Prng.t -> float
val mean : t -> float
(** Analytic mean; [infinity] for Pareto with shape <= 1. *)

val survival : t -> float -> float
(** [survival t x] is P(duration > x). *)
