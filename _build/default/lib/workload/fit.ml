type mixture = { alpha : float; ms : float; ml : float }

let density mean x = if x < 0.0 then 0.0 else exp (-.x /. mean) /. mean

let responsibility m x =
  let ws = m.alpha *. density m.ms x in
  let wl = (1.0 -. m.alpha) *. density m.ml x in
  if ws +. wl <= 0.0 then 0.5 else ws /. (ws +. wl)

let normalize m = if m.ms <= m.ml then m else { alpha = 1.0 -. m.alpha; ms = m.ml; ml = m.ms }

let em ?(iterations = 200) ?(tol = 1e-9) durations =
  let xs = List.filter (fun x -> x > 0.0 && Float.is_finite x) durations in
  let n = List.length xs in
  if n < 2 then invalid_arg "Fit.em: need at least 2 positive durations";
  let nf = float_of_int n in
  let sorted = List.sort compare xs in
  (* Initialize from the lower/upper halves. *)
  let half = n / 2 in
  let lower = List.filteri (fun i _ -> i < half) sorted in
  let upper = List.filteri (fun i _ -> i >= half) sorted in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
  let init =
    let ms = max 1e-9 (mean lower) and ml = max 1e-9 (mean upper) in
    if ms = ml then { alpha = 0.5; ms; ml = ml *. 2.0 } else { alpha = 0.5; ms; ml }
  in
  let rec iterate m step =
    if step >= iterations then m
    else begin
      let rs = List.map (responsibility m) xs in
      let sum_r = List.fold_left ( +. ) 0.0 rs in
      let sum_rx = List.fold_left2 (fun acc r x -> acc +. (r *. x)) 0.0 rs xs in
      let sum_r' = nf -. sum_r in
      let sum_rx' = List.fold_left2 (fun acc r x -> acc +. ((1.0 -. r) *. x)) 0.0 rs xs in
      let m' =
        {
          alpha = sum_r /. nf;
          ms = (if sum_r > 1e-12 then max 1e-9 (sum_rx /. sum_r) else m.ms);
          ml = (if sum_r' > 1e-12 then max 1e-9 (sum_rx' /. sum_r') else m.ml);
        }
      in
      let delta =
        abs_float (m'.alpha -. m.alpha)
        +. (abs_float (m'.ms -. m.ms) /. m.ms)
        +. (abs_float (m'.ml -. m.ml) /. m.ml)
      in
      if delta < tol then m' else iterate m' (step + 1)
    end
  in
  normalize (iterate init 0)

let log_likelihood m durations =
  List.fold_left
    (fun acc x ->
      let p = (m.alpha *. density m.ms x) +. ((1.0 -. m.alpha) *. density m.ml x) in
      acc +. log (max 1e-300 p))
    0.0 durations

let classify m x = if responsibility m x >= 0.5 then `Short else `Long
