(** Fitting the two-exponential mixture model to observed membership
    durations — the adaptive tuning sketched in Section 3.4: "from its
    collected trace data [the key server] can compute the group
    statistics such as Ms, Ml, and alpha", then pick the best scheme
    and S-period from the analytic model. *)

type mixture = {
  alpha : float;  (** weight of the short component *)
  ms : float;  (** short mean *)
  ml : float;  (** long mean (>= ms) *)
}

val em : ?iterations:int -> ?tol:float -> float list -> mixture
(** [em durations] fits a two-component exponential mixture by
    expectation-maximization. Requires at least 2 positive
    observations; components are returned with [ms <= ml].
    @raise Invalid_argument on empty/invalid input. *)

val log_likelihood : mixture -> float list -> float
(** Mixture log-likelihood of the observations. *)

val classify : mixture -> float -> [ `Short | `Long ]
(** Maximum-responsibility class of one duration. *)
