module Prng = Gkm_crypto.Prng

type cls = Short | Long

type config = { n_target : int; alpha : float; ms : float; ml : float; tp : float }

let of_params ~n_target ~alpha ~ms ~ml ~tp =
  if n_target < 0 then invalid_arg "Membership: negative target size";
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Membership: alpha outside [0, 1]";
  if ms <= 0.0 || ml <= 0.0 then invalid_arg "Membership: class means must be positive";
  if tp <= 0.0 then invalid_arg "Membership: rekey interval must be positive";
  { n_target; alpha; ms; ml; tp }

type event = { time : float; member : int; cls : cls; kind : [ `Join | `Depart ] }

let pr t m = 1.0 -. exp (-.t /. m)

let joins_per_interval cfg =
  let ps = pr cfg.tp cfg.ms and pl = pr cfg.tp cfg.ml in
  float_of_int cfg.n_target /. ((cfg.alpha /. ps) +. ((1.0 -. cfg.alpha) /. pl))

let stationary_short_fraction cfg =
  if cfg.n_target = 0 then 0.0
  else begin
    let ps = pr cfg.tp cfg.ms in
    let j = joins_per_interval cfg in
    cfg.alpha *. j /. ps /. float_of_int cfg.n_target
  end

let mean_of cfg = function Short -> cfg.ms | Long -> cfg.ml

let generate cfg ~rng ~horizon =
  if horizon < 0.0 then invalid_arg "Membership.generate: negative horizon";
  let events = ref [] in
  let next_member = ref 0 in
  let emit time member cls kind = events := { time; member; cls; kind } :: !events in
  let admit time cls =
    let member = !next_member in
    incr next_member;
    emit time member cls `Join;
    let duration = Prng.exponential rng ~mean:(mean_of cfg cls) in
    let depart_at = time +. duration in
    if depart_at <= horizon then emit depart_at member cls `Depart
  in
  (* Seed the stationary population. Residual lifetimes of exponential
     members are exponential with the same mean (memorylessness). *)
  let short_frac = stationary_short_fraction cfg in
  for _ = 1 to cfg.n_target do
    let cls = if Prng.bernoulli rng short_frac then Short else Long in
    admit 0.0 cls
  done;
  (* Poisson arrivals at rate J / Tp. *)
  let rate = joins_per_interval cfg /. cfg.tp in
  if rate > 0.0 then begin
    let t = ref (Prng.exponential rng ~mean:(1.0 /. rate)) in
    while !t <= horizon do
      let cls = if Prng.bernoulli rng cfg.alpha then Short else Long in
      admit !t cls;
      t := !t +. Prng.exponential rng ~mean:(1.0 /. rate)
    done
  end;
  List.stable_sort
    (fun a b ->
      let c = compare a.time b.time in
      if c <> 0 then c
      else begin
        let rank e = match e.kind with `Join -> 0 | `Depart -> 1 in
        let c = compare a.member b.member in
        if c <> 0 then c else compare (rank a) (rank b)
      end)
    (List.rev !events)

let intervals cfg ~rng ~n_intervals =
  if n_intervals < 0 then invalid_arg "Membership.intervals: negative interval count";
  let horizon = float_of_int n_intervals *. cfg.tp in
  let events = generate cfg ~rng ~horizon in
  let buckets = Array.make n_intervals ([], []) in
  List.iter
    (fun e ->
      (* Events at exactly t = i * Tp are processed by the rekeying at
         the end of interval i (index i), except t = horizon which
         belongs to the last interval. *)
      let idx = min (n_intervals - 1) (int_of_float (e.time /. cfg.tp)) in
      if idx >= 0 then begin
        let joins, departs = buckets.(idx) in
        match e.kind with
        | `Join -> buckets.(idx) <- ((e.member, e.cls) :: joins, departs)
        | `Depart -> buckets.(idx) <- (joins, e.member :: departs)
      end)
    events;
  Array.to_list (Array.map (fun (j, d) -> (List.rev j, List.rev d)) buckets)
