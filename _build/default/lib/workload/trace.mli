(** Recording and replaying membership traces.

    The key server of Section 3.4 tunes itself from "collected trace
    data"; this module gives traces a concrete portable form (a CSV
    dialect), plus the derived statistics the tuning needs. *)

val to_csv : Membership.event list -> string
(** One event per line: [time,member,class,kind] with [class] in
    {s,l} and [kind] in {join,depart}. Header line included. *)

val of_csv : string -> (Membership.event list, string) result
(** Inverse of {!to_csv}; tolerates blank lines and a missing header.
    [Error] pinpoints the first malformed line. Events are re-sorted
    chronologically. *)

val durations : Membership.event list -> float list
(** Completed membership durations (join and depart both present). *)

val censored : Membership.event list -> int
(** Members that joined but never departed within the trace. *)

val bucket : tp:float -> Membership.event list -> ((int * Membership.cls) list * int list) list
(** Batch the trace into rekey intervals of length [tp] (same
    convention as {!Membership.intervals}): for each interval, the
    joins (with class) and departures inside it. The number of buckets
    covers the last event. @raise Invalid_argument if [tp <= 0]. *)
