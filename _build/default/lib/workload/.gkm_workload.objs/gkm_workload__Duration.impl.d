lib/workload/duration.ml: Gkm_crypto
