lib/workload/membership.ml: Array Gkm_crypto List
