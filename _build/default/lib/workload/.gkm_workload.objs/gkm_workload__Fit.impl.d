lib/workload/fit.ml: Float List
