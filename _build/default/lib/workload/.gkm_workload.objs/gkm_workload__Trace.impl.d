lib/workload/trace.ml: Array Buffer Hashtbl List Membership Printf String
