lib/workload/fit.mli:
