lib/workload/trace.mli: Membership
