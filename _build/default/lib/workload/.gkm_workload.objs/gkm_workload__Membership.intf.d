lib/workload/membership.mli: Gkm_crypto
