lib/workload/duration.mli: Gkm_crypto
