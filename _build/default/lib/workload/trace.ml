let header = "time,member,class,kind"

let cls_to_string = function Membership.Short -> "s" | Long -> "l"
let kind_to_string = function `Join -> "join" | `Depart -> "depart"

let to_csv events =
  let buf = Buffer.create (64 * (List.length events + 1)) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (e : Membership.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%.17g,%d,%s,%s\n" e.time e.member (cls_to_string e.cls)
           (kind_to_string e.kind)))
    events;
  Buffer.contents buf

let parse_line lineno line =
  match String.split_on_char ',' line with
  | [ time; member; cls; kind ] -> (
      match
        ( float_of_string_opt (String.trim time),
          int_of_string_opt (String.trim member),
          String.trim cls,
          String.trim kind )
      with
      | Some time, Some member, ("s" | "l"), ("join" | "depart") ->
          let cls =
            if String.trim cls = "s" then Membership.Short else Membership.Long
          in
          let kind = if String.trim kind = "join" then `Join else `Depart in
          Ok { Membership.time; member; cls; kind }
      | _ -> Error (Printf.sprintf "line %d: malformed fields in %S" lineno line))
  | _ -> Error (Printf.sprintf "line %d: expected 4 comma-separated fields in %S" lineno line)

let of_csv text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] ->
        Ok
          (List.stable_sort
             (fun (a : Membership.event) b -> compare a.time b.time)
             (List.rev acc))
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed = header then go (lineno + 1) acc rest
        else begin
          match parse_line lineno trimmed with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error _ as err -> err
        end
  in
  go 1 [] lines

let durations events =
  let join_time = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun (e : Membership.event) ->
      match e.kind with
      | `Join -> Hashtbl.replace join_time e.member e.time
      | `Depart -> (
          match Hashtbl.find_opt join_time e.member with
          | Some t0 ->
              out := (e.time -. t0) :: !out;
              Hashtbl.remove join_time e.member
          | None -> ()))
    events;
  List.rev !out

let censored events =
  let open_members = Hashtbl.create 64 in
  List.iter
    (fun (e : Membership.event) ->
      match e.kind with
      | `Join -> Hashtbl.replace open_members e.member ()
      | `Depart -> Hashtbl.remove open_members e.member)
    events;
  Hashtbl.length open_members

let bucket ~tp events =
  if tp <= 0.0 then invalid_arg "Trace.bucket: interval must be positive";
  match events with
  | [] -> []
  | _ ->
      let last = List.fold_left (fun acc (e : Membership.event) -> max acc e.time) 0.0 events in
      let n = 1 + int_of_float (last /. tp) in
      let buckets = Array.make n ([], []) in
      List.iter
        (fun (e : Membership.event) ->
          let idx = min (n - 1) (int_of_float (e.time /. tp)) in
          let joins, departs = buckets.(idx) in
          match e.kind with
          | `Join -> buckets.(idx) <- ((e.member, e.cls) :: joins, departs)
          | `Depart -> buckets.(idx) <- (joins, e.member :: departs))
        events;
      Array.to_list (Array.map (fun (j, d) -> (List.rev j, List.rev d)) buckets)
