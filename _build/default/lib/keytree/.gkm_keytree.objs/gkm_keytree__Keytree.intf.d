lib/keytree/keytree.mli: Format Gkm_crypto
