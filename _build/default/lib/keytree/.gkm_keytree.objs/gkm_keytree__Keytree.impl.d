lib/keytree/keytree.ml: Buffer Bytes Format Gkm_crypto Hashtbl List Option Printf
