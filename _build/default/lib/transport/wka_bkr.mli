(** The WKA-BKR reliable rekey transport [SZJ02].

    Weighted Key Assignment: in the first round, each encrypted key is
    proactively replicated according to its expected number of
    transmissions (formula 14) computed from the loss rates of the
    receivers that need it; keys are packed into packets breadth-first
    (most valuable, highest-level keys first).

    Batched Key Retransmission: after each round, receivers NACK; the
    server re-packs only the keys still needed by someone — weighted
    by the remaining receivers — instead of resending lost packets. *)

type config = {
  keys_per_packet : int;
  max_rounds : int;
  weight_cap : int;  (** upper bound on per-key replication per round *)
}

val default : config
(** 25 keys/packet, 100 rounds, replication capped at 16. *)

val deliver :
  ?config:config -> channel:Gkm_net.Channel.t -> Job.t -> Delivery.outcome
(** Run the protocol until every receiver holds all entries it needs
    (or [max_rounds] is hit — see [outcome.undelivered]). *)
