lib/transport/delivery.ml: Array Format Hashtbl Job List Option
