lib/transport/delivery.mli: Format Job
