lib/transport/proactive_fec.ml: Array Delivery Float Fun Gkm_net Job List
