lib/transport/wka_bkr.mli: Delivery Gkm_net Job
