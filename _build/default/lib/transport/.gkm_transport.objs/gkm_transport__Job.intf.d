lib/transport/job.mli: Gkm_keytree Gkm_lkh Gkm_net
