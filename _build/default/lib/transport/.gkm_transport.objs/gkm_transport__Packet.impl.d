lib/transport/packet.ml: Array Bytes Gkm_crypto Gkm_fec Gkm_lkh List Printf
