lib/transport/proactive_fec.mli: Delivery Gkm_net Job
