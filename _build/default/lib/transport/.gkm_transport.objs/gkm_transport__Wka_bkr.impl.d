lib/transport/wka_bkr.ml: Array Delivery Float Gkm_net Job List
