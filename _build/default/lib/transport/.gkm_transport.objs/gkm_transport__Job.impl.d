lib/transport/job.ml: Array Gkm_keytree Gkm_lkh Gkm_net List
