lib/transport/multi_send.mli: Delivery Gkm_net Job
