lib/transport/packet.mli: Gkm_lkh
