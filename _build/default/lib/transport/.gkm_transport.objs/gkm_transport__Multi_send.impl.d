lib/transport/multi_send.ml: Array Delivery Gkm_net List
