module Rekey_msg = Gkm_lkh.Rekey_msg
module Reed_solomon = Gkm_fec.Reed_solomon

type t = { seq : int; block : int; index_in_block : int; payload : bytes }

(* Per-entry layout: i32 target, i32 version, u16 level, i32 wrapped,
   i32 receivers, u16 ct_len, ct. A payload starts with a u16 entry
   count; the rest is zero padding up to the fixed capacity. *)

let entry_fixed = 20
let entry_size (e : Rekey_msg.entry) = entry_fixed + Bytes.length e.ciphertext

open Gkm_crypto.Bytes_io

let write_entry buf pos (e : Rekey_msg.entry) =
  let pos = put_i32 buf pos e.target_node in
  let pos = put_i32 buf pos e.target_version in
  let pos = put_u16 buf pos e.level in
  let pos = put_i32 buf pos e.wrapped_under in
  let pos = put_i32 buf pos e.receivers in
  let pos = put_u16 buf pos (Bytes.length e.ciphertext) in
  Bytes.blit e.ciphertext 0 buf pos (Bytes.length e.ciphertext);
  pos + Bytes.length e.ciphertext

let encode_entries ~capacity_bytes entries =
  let biggest = List.fold_left (fun acc e -> max acc (entry_size e)) 0 entries in
  if capacity_bytes < 2 + biggest then
    invalid_arg
      (Printf.sprintf "Packet.encode_entries: capacity %dB below largest entry (%dB)"
         capacity_bytes (2 + biggest));
  let packets = ref [] and seq = ref 0 in
  let flush batch =
    match batch with
    | [] -> ()
    | batch ->
        let payload = Bytes.make capacity_bytes '\000' in
        let pos = ref (put_u16 payload 0 (List.length batch)) in
        List.iter (fun e -> pos := write_entry payload !pos e) (List.rev batch);
        packets := { seq = !seq; block = 0; index_in_block = 0; payload } :: !packets;
        incr seq
  in
  let batch = ref [] and used = ref 2 in
  List.iter
    (fun e ->
      let sz = entry_size e in
      if !used + sz > capacity_bytes then begin
        flush !batch;
        batch := [];
        used := 2
      end;
      batch := e :: !batch;
      used := !used + sz)
    entries;
  flush !batch;
  List.rev !packets

let decode_payload payload =
  let len = Bytes.length payload in
  if len < 2 then Error "payload shorter than its header"
  else begin
    let count = get_u16 payload 0 in
    let rec go pos remaining acc =
      if remaining = 0 then Ok (List.rev acc)
      else if pos + entry_fixed > len then Error "truncated entry header"
      else begin
        let target_node = get_i32 payload pos in
        let target_version = get_i32 payload (pos + 4) in
        let level = get_u16 payload (pos + 8) in
        let wrapped_under = get_i32 payload (pos + 10) in
        let receivers = get_i32 payload (pos + 14) in
        let ct_len = get_u16 payload (pos + 18) in
        let pos = pos + entry_fixed in
        if pos + ct_len > len then Error "truncated ciphertext"
        else begin
          let entry =
            {
              Rekey_msg.target_node;
              target_version;
              level;
              wrapped_under;
              receivers;
              ciphertext = Bytes.sub payload pos ct_len;
            }
          in
          go (pos + ct_len) (remaining - 1) (entry :: acc)
        end
      end
    in
    go 2 count []
  end

let blocks_of_packets ~block_size packets =
  if block_size < 1 then invalid_arg "Packet.blocks_of_packets: block_size must be >= 1";
  let rec cut acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | p :: rest ->
        if n = block_size then cut (List.rev current :: acc) [ p ] 1 rest
        else cut acc (p :: current) (n + 1) rest
  in
  let blocks = cut [] [] 0 packets in
  List.mapi
    (fun b block ->
      List.mapi (fun i p -> { p with block = b; index_in_block = i }) block)
    blocks

let parity_shards block ~nparity =
  match block with
  | [] -> []
  | _ ->
      let data = Array.of_list (List.map (fun p -> p.payload) block) in
      let code = Reed_solomon.create ~k:(Array.length data) in
      Array.to_list (Reed_solomon.encode code ~data ~nparity)

let recover_block ~k ~data ~parity =
  let code = Reed_solomon.create ~k in
  let shards =
    List.map (fun (i, payload) -> (i, payload)) data
    @ List.map (fun (j, shard) -> (k + j, shard)) parity
  in
  match Reed_solomon.decode code ~shards with
  | Some recovered -> Ok (Array.to_list recovered)
  | None -> Error "not enough shards to recover the block"
