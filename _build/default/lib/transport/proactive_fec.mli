(** The proactive-FEC rekey transport [YLZL01].

    The rekey payload is packed once into data packets (breadth-first,
    no replication) and grouped into FEC blocks. Round 1 multicasts
    each block's data packets plus a proactive ration of Reed-Solomon
    parity packets; a receiver recovers a whole block from any [k] of
    its packets. After each round, receivers that still miss an
    interested key NACK the shortfall of the corresponding block, and
    the server multicasts [max shortfall] *fresh* parity packets per
    block (never repeating a parity, courtesy of the RS erasure code's
    unlimited parity indexes — see {!Gkm_fec.Reed_solomon}).

    Parity packets carry no keys; they are charged to bandwidth as one
    full packet of key slots ([outcome.bandwidth_keys]). *)

type config = {
  keys_per_packet : int;
  block_size : int;  (** data packets per FEC block (k) *)
  proactivity : float;  (** rho: round-1 parities = ceil(rho * k) *)
  max_rounds : int;
}

val default : config
(** 25 keys/packet, blocks of 8, rho = 0.25, 100 rounds. *)

val deliver :
  ?config:config -> channel:Gkm_net.Channel.t -> Job.t -> Delivery.outcome
