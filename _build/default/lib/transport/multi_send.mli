(** The multi-send baseline transport [MSEC]: every key still needed
    is replicated the same fixed number of times each round,
    regardless of its importance or its receivers' loss rates. *)

type config = {
  keys_per_packet : int;
  replication : int;  (** copies of every key per round *)
  max_rounds : int;
}

val default : config
(** 25 keys/packet, replication 2, 100 rounds. *)

val deliver :
  ?config:config -> channel:Gkm_net.Channel.t -> Job.t -> Delivery.outcome
