(* Pay-per-view session with channel surfers.

   The motivating workload of Section 3: most viewers sample the
   stream for a couple of minutes and leave; a minority stays for the
   whole broadcast. We run the same two-class churn against the
   one-keytree baseline and the TT two-partition scheme, and report
   the key server's bandwidth per rekey interval — the Fig. 3/4
   experiment, end to end on the executable system.

   Run with: dune exec examples/pay_per_view.exe *)

open Gkm

let () =
  let n = 1500 (* target audience *)
  and alpha = 0.85 (* fraction of surfers *)
  and ms = 150.0 (* surfers stay ~2.5 minutes *)
  and ml = 7200.0 (* fans stay ~2 hours *)
  and tp = 60.0 (* rekey once a minute *)
  and s_period = 8 in
  Printf.printf "Pay-per-view: %d viewers, %.0f%% channel surfers (Ms=%.0fs, Ml=%.0fs)\n" n
    (100.0 *. alpha) ms ml;
  Printf.printf "Rekeying every %.0fs; S-period = %d intervals\n\n" tp s_period;

  let run kind =
    Sim_driver.run_partition ~seed:99 ~n ~alpha ~ms ~ml ~tp ~s_period ~warmup:10 ~intervals:60
      ~kind ()
  in
  Printf.printf "%14s %14s %12s %14s\n" "scheme" "keys/interval" "+-95%" "S-partition";
  let results = List.map (fun kind -> (kind, run kind)) Scheme.all_kinds in
  List.iter
    (fun (kind, (r : Sim_driver.partition_result)) ->
      Printf.printf "%14s %14.1f %12.1f %14.1f\n" (Scheme.kind_name kind) r.mean_keys r.ci95
        r.mean_s_size)
    results;

  let baseline = (List.assoc Scheme.One_keytree results).mean_keys in
  Printf.printf "\nSavings over the one-keytree baseline:\n";
  List.iter
    (fun (kind, (r : Sim_driver.partition_result)) ->
      if kind <> Scheme.One_keytree then
        Printf.printf "  %-12s %+6.1f%%\n" (Scheme.kind_name kind)
          (100.0 *. (1.0 -. (r.mean_keys /. baseline))))
    results;

  (* What does the analytic model of Section 3.3 predict at this N? *)
  let p = { Gkm_analytic.Params.default with n; alpha; ms; ml; tp; k = s_period } in
  Printf.printf "\nAnalytic model prediction (same parameters):\n";
  List.iter
    (fun (name, scheme) ->
      Printf.printf "  %-12s %8.1f keys/interval\n" name
        (Gkm_analytic.Two_partition.cost p scheme))
    [
      ("one-keytree", Gkm_analytic.Two_partition.One_keytree);
      ("QT-scheme", Gkm_analytic.Two_partition.Qt);
      ("TT-scheme", Gkm_analytic.Two_partition.Tt);
      ("PT-scheme", Gkm_analytic.Two_partition.Pt);
    ];
  let best_k, best_cost =
    Gkm_analytic.Two_partition.best_k p Gkm_analytic.Two_partition.Tt ~k_max:30
  in
  Printf.printf "\nBest S-period for this audience (TT, analytic): K = %d (%.0f keys/interval)\n"
    best_k best_cost
