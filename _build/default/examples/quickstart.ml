(* Quickstart: a key server, nine members, one eviction.

   Demonstrates the base LKH machinery: batched admission, the logical
   key tree, rekey messages, member-side decryption, and
   forward/backward secrecy. Mirrors the example of Fig. 1 in the
   paper (users u1..u9 under a degree-3 tree).

   Run with: dune exec examples/quickstart.exe *)

module Key = Gkm_crypto.Key
module Server = Gkm_lkh.Server
module Member = Gkm_lkh.Member
module Rekey_msg = Gkm_lkh.Rekey_msg

let section title = Printf.printf "\n== %s ==\n" title

let () =
  section "Admitting u1..u9 as one batch";
  let server = Server.create ~degree:3 ~seed:2024 () in
  (* Each registration hands the member its individual key over the
     out-of-band secure channel. *)
  let bootstrap = Hashtbl.create 9 in
  for u = 1 to 9 do
    Hashtbl.replace bootstrap u (Server.register server u)
  done;
  let msg = Option.get (Server.rekey server) in
  Printf.printf "rekey message: %d encrypted keys (epoch %d)\n" (Rekey_msg.size_keys msg)
    msg.epoch;

  (* Members bootstrap purely from the multicast message plus their
     individual key. *)
  let members = Hashtbl.create 9 in
  for u = 1 to 9 do
    let leaf = fst (List.hd (Server.member_path server u)) in
    let m = Member.create ~id:u ~leaf_node:leaf ~individual_key:(Hashtbl.find bootstrap u) in
    let used = Member.process m msg in
    Hashtbl.replace members u m;
    Printf.printf "  u%d decrypted %d entries; holds DEK: %b\n" u used
      (Member.group_key m <> None)
  done;
  let dek = Option.get (Server.group_key server) in
  Printf.printf "group key (DEK) fingerprint: %s\n" (Key.fingerprint dek);

  section "The logical key tree";
  Format.printf "%a" Gkm_keytree.Keytree.pp (Server.tree server);

  section "u4 departs (forward secrecy)";
  let old_dek = dek in
  let msg = Server.depart_now server 4 in
  Printf.printf "rekey message: %d encrypted keys\n" (Rekey_msg.size_keys msg);
  Hashtbl.iter (fun _ m -> ignore (Member.process m msg)) members;
  let new_dek = Option.get (Server.group_key server) in
  Printf.printf "DEK changed: %b (old %s -> new %s)\n"
    (not (Key.equal old_dek new_dek))
    (Key.fingerprint old_dek) (Key.fingerprint new_dek);
  let u4 = Hashtbl.find members 4 in
  let u5 = Hashtbl.find members 5 in
  Printf.printf "u5 holds the new DEK: %b\n"
    (match Member.group_key u5 with Some k -> Key.equal k new_dek | None -> false);
  Printf.printf "evicted u4 holds the new DEK: %b\n"
    (match Member.group_key u4 with Some k -> Key.equal k new_dek | None -> false);

  section "Encrypting group traffic under the DEK";
  let payload = Bytes.of_string "pay-per-view frame 00142: goal replay" in
  let nonce = Bytes.make 16 '\001' in
  let cipher = Gkm_crypto.Aes128.expand (Key.to_bytes new_dek) in
  let ciphertext = Gkm_crypto.Aes128.ctr_transform cipher ~nonce payload in
  Printf.printf "ciphertext: %s...\n" (String.sub (Gkm_crypto.Hex.encode ciphertext) 0 32);
  let u5_dek = Option.get (Member.group_key u5) in
  let u5_cipher = Gkm_crypto.Aes128.expand (Key.to_bytes u5_dek) in
  let decrypted = Gkm_crypto.Aes128.ctr_transform u5_cipher ~nonce ciphertext in
  Printf.printf "u5 decrypts: %S\n" (Bytes.to_string decrypted);

  section "Cost accounting";
  Printf.printf "total encrypted keys so far: %d across %d rekeyings\n"
    (Server.cumulative_cost server) (Server.rekey_count server)
