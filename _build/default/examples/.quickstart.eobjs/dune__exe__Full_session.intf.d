examples/full_session.mli:
