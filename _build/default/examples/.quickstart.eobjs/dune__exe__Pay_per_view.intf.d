examples/pay_per_view.mli:
