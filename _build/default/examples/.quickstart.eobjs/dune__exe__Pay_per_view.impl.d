examples/pay_per_view.ml: Gkm Gkm_analytic List Printf Scheme Sim_driver
