examples/satellite_feed.ml: Array Gkm Gkm_crypto Gkm_lkh Gkm_net Gkm_transport Hashtbl List Loss_tree Option Printf String
