examples/quickstart.mli:
