examples/satellite_feed.mli:
