examples/adaptive_server.ml: Gkm_analytic Gkm_crypto Gkm_workload Hashtbl List Params Printf Two_partition
