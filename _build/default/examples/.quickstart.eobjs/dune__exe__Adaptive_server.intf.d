examples/adaptive_server.mli:
