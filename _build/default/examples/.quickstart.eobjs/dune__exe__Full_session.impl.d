examples/full_session.ml: Gkm List Printf Scheme Session
