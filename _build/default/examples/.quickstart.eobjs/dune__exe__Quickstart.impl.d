examples/quickstart.ml: Bytes Format Gkm_crypto Gkm_keytree Gkm_lkh Hashtbl List Option Printf String
