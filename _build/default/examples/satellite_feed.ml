(* Secure broadcast to a mixed fiber/satellite audience.

   The Section 4 scenario: most receivers sit on clean links (2%
   packet loss) while a minority behind satellite/wireless hops loses
   20% of packets. We organize the key trees by loss band and deliver
   one batched rekeying with the WKA-BKR transport, comparing against
   the single mixed tree — Fig. 6 end to end, with real key wrapping,
   real per-receiver loss processes and real NACK rounds. We then
   verify that every surviving receiver (and no evicted one) can
   decrypt a content frame.

   Run with: dune exec examples/satellite_feed.exe *)

module Key = Gkm_crypto.Key
module Prng = Gkm_crypto.Prng
module Member = Gkm_lkh.Member
module Channel = Gkm_net.Channel
module Loss_model = Gkm_net.Loss_model
open Gkm

let n = 2000
let n_evict = 60
let alpha = 0.25 (* satellite fraction *)
let ph = 0.2
let pl = 0.02

let run_org name assignment =
  let rng = Prng.create 7 in
  let channel, satellite, fiber =
    Channel.two_class ~rng ~n ~alpha ~high:(Loss_model.bernoulli ph)
      ~low:(Loss_model.bernoulli pl)
  in
  let org = Loss_tree.create { degree = 4; seed = 11; assignment } in
  let keys = Hashtbl.create n in
  List.iter (fun m -> Hashtbl.replace keys m (Loss_tree.register org ~member:m ~loss:ph)) satellite;
  List.iter (fun m -> Hashtbl.replace keys m (Loss_tree.register org ~member:m ~loss:pl)) fiber;
  let admission = Option.get (Loss_tree.rekey org) in
  (* Instantiate receiver state from the admission message. *)
  let members = Hashtbl.create n in
  List.iter
    (fun (m, leaf) ->
      Hashtbl.replace members m
        (Member.create ~id:m ~leaf_node:leaf ~individual_key:(Hashtbl.find keys m)))
    (Loss_tree.placements org);
  Hashtbl.iter (fun _ m -> ignore (Member.process m admission)) members;
  (* Evict a batch and deliver the rekey message over the lossy channel. *)
  let victims = List.init n_evict (fun i -> i * (n / n_evict)) in
  List.iter (Loss_tree.enqueue_departure org) victims;
  let msg = Option.get (Loss_tree.rekey org) in
  let job = Gkm_transport.Job.of_rekey ~channel ~trees:(Loss_tree.trees org) msg in
  let outcome = Gkm_transport.Wka_bkr.deliver ~channel job in
  (* Receivers process the entries they are interested in (the
     transport already accounted for who got which packet; here every
     survivor replays the full message to update its key state). *)
  Hashtbl.iter (fun _ m -> ignore (Member.process m msg)) members;
  let dek = Option.get (Loss_tree.group_key org) in
  let survivors_ok = ref 0 and evicted_blocked = ref 0 in
  Hashtbl.iter
    (fun id m ->
      let has = match Member.group_key m with Some k -> Key.equal k dek | None -> false in
      if Loss_tree.is_member org id then begin
        if has then incr survivors_ok
      end
      else if not has then incr evicted_blocked)
    members;
  Printf.printf "%-18s bands=%s keys sent=%5d packets=%3d rounds=%d\n" name
    (String.concat "+" (Array.to_list (Array.map string_of_int (Loss_tree.band_sizes org))))
    outcome.Gkm_transport.Delivery.keys outcome.packets outcome.rounds;
  Printf.printf "%-18s survivors with DEK: %d/%d, evicted locked out: %d/%d\n\n" "" !survivors_ok
    (n - n_evict) !evicted_blocked n_evict;
  outcome.Gkm_transport.Delivery.keys

let () =
  Printf.printf
    "Satellite feed: %d receivers, %.0f%% at %.0f%%%% loss, evicting %d as one batch\n\n" n
    (100.0 *. alpha) (100.0 *. ph) n_evict;
  let one = run_org "one-keytree" (Loss_tree.Random 1) in
  let rand = run_org "two-random" (Loss_tree.Random 2) in
  let homog = run_org "loss-homogenized" (Loss_tree.By_loss [ 0.05 ]) in
  Printf.printf "Bandwidth vs one-keytree: two-random %+.1f%%, loss-homogenized %+.1f%%\n"
    (100.0 *. ((float_of_int rand /. float_of_int one) -. 1.0))
    (100.0 *. ((float_of_int homog /. float_of_int one) -. 1.0))
