(* Adaptive scheme selection (Section 3.4).

   "At the beginning of a session, the key server just maintains one
   key tree; later, from its collected trace data it can compute the
   group statistics such as Ms, Ml, and alpha. Then using our analytic
   model, the key server can choose the best scheme to use."

   We generate a churn trace, let the server observe completed
   membership durations, fit the two-exponential mixture by EM, and
   pick the scheme and S-period the analytic model recommends.

   Run with: dune exec examples/adaptive_server.exe *)

module Prng = Gkm_crypto.Prng
module Membership = Gkm_workload.Membership
module Fit = Gkm_workload.Fit
open Gkm_analytic

let () =
  (* Ground truth the server does NOT know. *)
  let truth = { Params.default with n = 4096; alpha = 0.85; ms = 200.0; ml = 9000.0 } in
  Printf.printf "Hidden workload: alpha=%.2f Ms=%.0fs Ml=%.0fs N=%d\n\n" truth.alpha truth.ms
    truth.ml truth.n;

  (* Phase 1: observe a trace. *)
  let cfg =
    Membership.of_params ~n_target:truth.n ~alpha:truth.alpha ~ms:truth.ms ~ml:truth.ml
      ~tp:truth.tp
  in
  let rng = Prng.create 5 in
  let events = Membership.generate cfg ~rng ~horizon:14400.0 in
  let join_time = Hashtbl.create 1024 in
  let durations = ref [] in
  List.iter
    (fun (e : Membership.event) ->
      match e.kind with
      | `Join -> Hashtbl.replace join_time e.member e.time
      | `Depart ->
          let d = e.time -. Hashtbl.find join_time e.member in
          if d > 0.0 then durations := d :: !durations)
    events;
  Printf.printf "Observed %d completed memberships over a 4-hour window\n" (List.length !durations);

  (* Phase 2: fit the mixture. *)
  let m = Fit.em !durations in
  Printf.printf "EM fit:          alpha=%.2f Ms=%.0fs Ml=%.0fs\n\n" m.alpha m.ms m.ml;

  (* Phase 3: pick scheme and S-period from the analytic model. *)
  let fitted = { truth with alpha = m.alpha; ms = m.ms; ml = m.ml } in
  Printf.printf "%14s %10s %12s\n" "scheme" "best K" "keys/interval";
  let candidates =
    List.map
      (fun scheme ->
        let k, cost = Two_partition.best_k fitted scheme ~k_max:30 in
        Printf.printf "%14s %10d %12.0f\n" (Two_partition.scheme_name scheme) k cost;
        (scheme, k, cost))
      [ Two_partition.One_keytree; Two_partition.Qt; Two_partition.Tt ]
  in
  let best_scheme, best_k, best_cost =
    List.fold_left
      (fun (bs, bk, bc) (s, k, c) -> if c < bc then (s, k, c) else (bs, bk, bc))
      (Two_partition.One_keytree, 0, infinity)
      candidates
  in
  Printf.printf "\nRecommendation: %s with K=%d (%.0f keys/interval)\n"
    (Two_partition.scheme_name best_scheme)
    best_k best_cost;

  (* How good is the recommendation against the hidden truth? *)
  let actual = Two_partition.cost { truth with k = best_k } best_scheme in
  let baseline = Two_partition.cost truth Two_partition.One_keytree in
  Printf.printf "Against ground truth: %.0f keys/interval vs one-keytree %.0f (%.1f%% saving)\n"
    actual baseline
    (100.0 *. (1.0 -. (actual /. baseline)))
