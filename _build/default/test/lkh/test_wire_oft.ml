module Key = Gkm_crypto.Key
module Prng = Gkm_crypto.Prng
open Gkm_lkh

let range a b = List.init (b - a + 1) (fun i -> a + i)

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let sample_msg () =
  let server = Server.create ~seed:3 () in
  List.iter (fun m -> ignore (Server.register server m)) (range 1 20);
  ignore (Server.rekey server);
  Server.enqueue_departure server 7;
  Server.enqueue_departure server 13;
  Option.get (Server.rekey server)

let auth_key = Key.fresh (Prng.create 77)

let msg_equal (a : Rekey_msg.t) (b : Rekey_msg.t) =
  a.epoch = b.epoch && a.root_node = b.root_node
  && List.length a.entries = List.length b.entries
  && List.for_all2
       (fun (x : Rekey_msg.entry) (y : Rekey_msg.entry) ->
         x.target_node = y.target_node
         && x.target_version = y.target_version
         && x.level = y.level
         && x.wrapped_under = y.wrapped_under
         && x.receivers = y.receivers
         && Bytes.equal x.ciphertext y.ciphertext)
       a.entries b.entries

let test_wire_roundtrip () =
  let msg = sample_msg () in
  let encoded = Wire.encode ~auth_key msg in
  Alcotest.(check int) "size prediction" (Wire.decoded_size msg) (Bytes.length encoded);
  match Wire.decode ~auth_key encoded with
  | Ok decoded -> Alcotest.(check bool) "roundtrip" true (msg_equal msg decoded)
  | Error e -> Alcotest.fail ("decode failed: " ^ e)

let test_wire_negative_ids () =
  (* Synthetic DEK (-1) and queue-member (-(m+2)) ids must survive. *)
  let entry =
    {
      Rekey_msg.target_node = -1;
      target_version = 3;
      level = 0;
      wrapped_under = -42;
      receivers = 1;
      ciphertext = Bytes.make Key.wrapped_size 'x';
    }
  in
  let msg = { Rekey_msg.epoch = 9; root_node = -1; entries = [ entry ] } in
  match Wire.decode ~auth_key (Wire.encode ~auth_key msg) with
  | Ok decoded -> Alcotest.(check bool) "negative ids roundtrip" true (msg_equal msg decoded)
  | Error e -> Alcotest.fail e

let test_wire_tamper_detected () =
  let msg = sample_msg () in
  let encoded = Wire.encode ~auth_key msg in
  for pos = 0 to Bytes.length encoded - 1 do
    if pos mod 37 = 0 then begin
      let bad = Bytes.copy encoded in
      Bytes.set bad pos (Char.chr (Char.code (Bytes.get bad pos) lxor 0x40));
      match Wire.decode ~auth_key bad with
      | Ok _ -> Alcotest.failf "tampering at byte %d undetected" pos
      | Error _ -> ()
    end
  done

let test_wire_wrong_key () =
  let msg = sample_msg () in
  let encoded = Wire.encode ~auth_key msg in
  match Wire.decode ~auth_key:(Key.fresh (Prng.create 1234)) encoded with
  | Ok _ -> Alcotest.fail "wrong auth key accepted"
  | Error e -> Alcotest.(check bool) "tag mismatch reported" true (e = "authentication tag mismatch")

let test_wire_truncation () =
  let msg = sample_msg () in
  let encoded = Wire.encode ~auth_key msg in
  for len = 0 to min 60 (Bytes.length encoded - 1) do
    match Wire.decode ~auth_key (Bytes.sub encoded 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | Error _ -> ()
  done

let test_wire_bad_magic () =
  let msg = sample_msg () in
  let encoded = Wire.encode ~auth_key msg in
  Bytes.set encoded 0 'X';
  match Wire.decode ~auth_key encoded with
  | Error "bad magic" -> ()
  | Error e -> Alcotest.failf "unexpected error %S" e
  | Ok _ -> Alcotest.fail "bad magic accepted"

let gen_entry =
  QCheck.Gen.(
    let* target_node = -1000 -- 1000 in
    let* target_version = 0 -- 10000 in
    let* level = 0 -- 40 in
    let* wrapped_under = -1000 -- 1000 in
    let* receivers = 0 -- 100000 in
    let* ct = string_size (return 32) in
    return
      {
        Rekey_msg.target_node;
        target_version;
        level;
        wrapped_under;
        receivers;
        ciphertext = Bytes.of_string ct;
      })

let gen_msg =
  QCheck.Gen.(
    let* epoch = 0 -- 100000 in
    let* root_node = -5 -- 100000 in
    let* entries = list_size (0 -- 30) gen_entry in
    return { Rekey_msg.epoch; root_node; entries })

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip on arbitrary messages" ~count:200
    (QCheck.make ~print:(fun (m : Rekey_msg.t) -> Printf.sprintf "epoch=%d entries=%d" m.epoch (List.length m.entries)) gen_msg)
    (fun msg ->
      match Wire.decode ~auth_key (Wire.encode ~auth_key msg) with
      | Ok decoded -> msg_equal msg decoded
      | Error _ -> false)

let prop_wire_garbage_never_raises =
  QCheck.Test.make ~name:"decode never raises on garbage" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Wire.decode ~auth_key (Bytes.of_string s) with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* OFT                                                                 *)

let assert_oft_ok t =
  match Oft.check t with Ok () -> () | Error e -> Alcotest.fail ("OFT invariant: " ^ e)

let all_members_compute_root t =
  match Oft.root_secret t with
  | None -> Oft.size t = 0
  | Some root ->
      List.for_all
        (fun m ->
          match Oft.compute_root (Oft.view t m) with
          | Some x -> Bytes.equal x root
          | None -> false)
        (Oft.members t)

let test_oft_joins () =
  let t = Oft.create ~seed:1 () in
  List.iter (Oft.join t) (range 1 17);
  Alcotest.(check int) "size" 17 (Oft.size t);
  assert_oft_ok t;
  Alcotest.(check bool) "all compute root" true (all_members_compute_root t)

let test_oft_backward_secrecy () =
  let t = Oft.create ~seed:2 () in
  List.iter (Oft.join t) (range 1 8);
  let old_root = Option.get (Oft.root_secret t) in
  Oft.join t 100;
  let new_root = Option.get (Oft.root_secret t) in
  Alcotest.(check bool) "root changed on join" false (Bytes.equal old_root new_root);
  Alcotest.(check bool) "joiner computes new root" true
    (match Oft.compute_root (Oft.view t 100) with
    | Some x -> Bytes.equal x new_root
    | None -> false)

let test_oft_leave_forward_secrecy () =
  let t = Oft.create ~seed:3 () in
  List.iter (Oft.join t) (range 1 16);
  Oft.leave t 5;
  assert_oft_ok t;
  Alcotest.(check bool) "survivors compute root" true (all_members_compute_root t);
  let root = Option.get (Oft.root_secret t) in
  (match Oft.evicted_view t 5 with
  | None -> Alcotest.fail "no frozen view"
  | Some frozen ->
      Alcotest.(check bool) "evicted cannot compute the new root" false
        (match Oft.compute_root frozen with Some x -> Bytes.equal x root | None -> false));
  (* Keep churning: the evicted view must stay useless. *)
  Oft.join t 50;
  Oft.leave t 9;
  let root = Option.get (Oft.root_secret t) in
  match Oft.evicted_view t 5 with
  | Some frozen ->
      Alcotest.(check bool) "still locked out" false
        (match Oft.compute_root frozen with Some x -> Bytes.equal x root | None -> false)
  | None -> Alcotest.fail "frozen view lost"

let test_oft_costs_logarithmic () =
  let t = Oft.create ~seed:4 () in
  List.iter (Oft.join t) (range 1 64);
  Oft.leave t 30;
  (* A 64-member binary tree is ~6 levels deep: OFT broadcasts about
     one blinded value per level, where binary LKH would send ~2 keys
     per level. *)
  let c = Oft.last_broadcast_cost t in
  Alcotest.(check bool) (Printf.sprintf "broadcast %d in [4, 10]" c) true (c >= 4 && c <= 10);
  Alcotest.(check int) "one unicast secret" 1 (Oft.last_unicast_cost t)

let test_oft_halves_lkh_binary () =
  (* Average single-departure cost over several evictions: OFT should
     be clearly below binary LKH's d * path wraps on the same size. *)
  let n = 128 in
  let oft = Oft.create ~seed:5 () in
  List.iter (Oft.join oft) (range 1 n);
  let lkh = Server.create ~seed:5 ~degree:2 () in
  List.iter (fun m -> ignore (Server.register lkh m)) (range 1 n);
  ignore (Server.rekey lkh);
  let oft_total = ref 0 and lkh_total = ref 0 in
  List.iter
    (fun m ->
      Oft.leave oft m;
      oft_total := !oft_total + Oft.last_broadcast_cost oft;
      let msg = Server.depart_now lkh m in
      lkh_total := !lkh_total + Rekey_msg.size_keys msg)
    [ 3; 40; 77; 100; 15 ];
  Alcotest.(check bool)
    (Printf.sprintf "OFT %d < LKH-binary %d" !oft_total !lkh_total)
    true
    (!oft_total * 3 < !lkh_total * 2)

let test_oft_edges () =
  let t = Oft.create ~seed:6 () in
  Alcotest.(check bool) "empty root" true (Oft.root_secret t = None);
  Oft.join t 1;
  Alcotest.(check bool) "singleton root = leaf secret" true (Oft.root_secret t <> None);
  Oft.leave t 1;
  Alcotest.(check int) "empty again" 0 (Oft.size t);
  Alcotest.(check bool) "no root" true (Oft.root_secret t = None);
  (match Oft.join t 1 with () -> ());
  (match Oft.join t 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double join accepted");
  match Oft.leave t 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stranger leave accepted"

let test_oft_batch_shares_paths () =
  (* A batch of departures under overlapping paths must broadcast
     fewer blinded values than the same departures one by one. *)
  let build () =
    let t = Oft.create ~seed:7 () in
    List.iter (Oft.join t) (range 1 64);
    t
  in
  let victims = [ 1; 2; 3; 4 ] in
  let t1 = build () in
  let individual =
    List.fold_left
      (fun acc m ->
        Oft.leave t1 m;
        acc + Oft.last_broadcast_cost t1)
      0 victims
  in
  let t2 = build () in
  Oft.batch t2 ~departed:victims ~joined:[];
  let batched = Oft.last_broadcast_cost t2 in
  Alcotest.(check bool)
    (Printf.sprintf "batched %d < individual %d" batched individual)
    true
    (batched < individual);
  (match Oft.check t2 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "survivors compute root" true (all_members_compute_root t2);
  let root = Option.get (Oft.root_secret t2) in
  List.iter
    (fun m ->
      match Oft.evicted_view t2 m with
      | Some frozen ->
          Alcotest.(check bool)
            (Printf.sprintf "evicted %d locked out" m)
            false
            (match Oft.compute_root frozen with Some x -> Bytes.equal x root | None -> false)
      | None -> Alcotest.fail "missing frozen view")
    victims

let test_oft_batch_mixed () =
  let t = Oft.create ~seed:8 () in
  List.iter (Oft.join t) (range 1 20);
  Oft.batch t ~departed:[ 2; 11; 19 ] ~joined:[ 30; 31 ];
  Alcotest.(check int) "size" 19 (Oft.size t);
  (match Oft.check t with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "all converge" true (all_members_compute_root t)

let test_oft_batch_validation () =
  let t = Oft.create ~seed:9 () in
  List.iter (Oft.join t) (range 1 4);
  (match Oft.batch t ~departed:[ 1; 1 ] ~joined:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate departure accepted");
  match Oft.batch t ~departed:[] ~joined:[ 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "join of existing member accepted"

let prop_oft_batch_churn =
  QCheck.Test.make ~name:"oft batched churn stays secure" ~count:30
    QCheck.(pair (int_range 0 500) (list_of_size Gen.(1 -- 8) (pair (int_range 0 4) (int_range 0 3))))
    (fun (seed, ops) ->
      let t = Oft.create ~seed () in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun (joins, leaves) ->
          let joined =
            List.init joins (fun _ ->
                incr next;
                !next)
          in
          let departed =
            List.filteri (fun i _ -> i < leaves) (List.sort compare (Oft.members t))
          in
          Oft.batch t ~departed ~joined;
          if Oft.check t <> Ok () then ok := false;
          if not (all_members_compute_root t) then ok := false;
          match Oft.root_secret t with
          | None -> ()
          | Some root ->
              List.iter
                (fun m ->
                  match Oft.evicted_view t m with
                  | Some frozen -> (
                      match Oft.compute_root frozen with
                      | Some x when Bytes.equal x root -> ok := false
                      | _ -> ())
                  | None -> ())
                departed)
        ops;
      !ok)

let prop_oft_churn =
  QCheck.Test.make ~name:"oft churn: invariants, convergence, lockout" ~count:40
    QCheck.(pair (int_range 0 1000) (list_of_size Gen.(1 -- 25) (int_range 0 9)))
    (fun (seed, ops) ->
      let t = Oft.create ~seed () in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          if op < 6 || Oft.size t = 0 then begin
            incr next;
            Oft.join t !next
          end
          else begin
            match Oft.members t with
            | m :: _ -> Oft.leave t m
            | [] -> ()
          end;
          if Oft.check t <> Ok () then ok := false;
          if not (all_members_compute_root t) then ok := false;
          (* Every frozen view must fail against the current root. *)
          match Oft.root_secret t with
          | None -> ()
          | Some root ->
              List.iter
                (fun m ->
                  match Oft.evicted_view t m with
                  | Some frozen -> (
                      match Oft.compute_root frozen with
                      | Some x when Bytes.equal x root -> ok := false
                      | _ -> ())
                  | None -> ())
                (List.init !next (fun i -> i + 1)))
        ops;
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gkm_lkh_wire_oft"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "negative ids" `Quick test_wire_negative_ids;
          Alcotest.test_case "tamper detection" `Quick test_wire_tamper_detected;
          Alcotest.test_case "wrong key" `Quick test_wire_wrong_key;
          Alcotest.test_case "truncation" `Quick test_wire_truncation;
          Alcotest.test_case "bad magic" `Quick test_wire_bad_magic;
        ]
        @ qsuite [ prop_wire_roundtrip; prop_wire_garbage_never_raises ] );
      ( "oft",
        [
          Alcotest.test_case "joins" `Quick test_oft_joins;
          Alcotest.test_case "backward secrecy" `Quick test_oft_backward_secrecy;
          Alcotest.test_case "forward secrecy" `Quick test_oft_leave_forward_secrecy;
          Alcotest.test_case "logarithmic costs" `Quick test_oft_costs_logarithmic;
          Alcotest.test_case "halves binary LKH" `Quick test_oft_halves_lkh_binary;
          Alcotest.test_case "edge cases" `Quick test_oft_edges;
          Alcotest.test_case "batch shares paths" `Quick test_oft_batch_shares_paths;
          Alcotest.test_case "batch mixed" `Quick test_oft_batch_mixed;
          Alcotest.test_case "batch validation" `Quick test_oft_batch_validation;
        ]
        @ qsuite [ prop_oft_churn; prop_oft_batch_churn ] );
    ]
