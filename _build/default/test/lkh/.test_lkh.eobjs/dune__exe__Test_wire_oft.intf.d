test/lkh/test_wire_oft.mli:
