test/lkh/test_snapshot.ml: Alcotest Bytes Char Gkm_crypto Gkm_keytree Gkm_lkh List Option Printf QCheck QCheck_alcotest Rekey_msg Result Server String
