test/lkh/test_lkh.ml: Alcotest Gkm_crypto Gkm_keytree Gkm_lkh Hashtbl List Member Option Printf QCheck QCheck_alcotest Rekey_msg Server String
