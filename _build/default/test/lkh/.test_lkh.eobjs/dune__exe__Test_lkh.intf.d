test/lkh/test_lkh.mli:
