test/lkh/test_snapshot.mli:
