test/lkh/test_wire_oft.ml: Alcotest Bytes Char Gen Gkm_crypto Gkm_lkh List Oft Option Printf QCheck QCheck_alcotest Rekey_msg Server Wire
