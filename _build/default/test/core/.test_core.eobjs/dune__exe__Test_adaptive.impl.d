test/core/test_adaptive.ml: Adaptive Alcotest Gkm Gkm_crypto Gkm_workload List Printf Scheme
