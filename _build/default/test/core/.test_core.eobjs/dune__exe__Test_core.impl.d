test/core/test_core.ml: Alcotest Array Fun Gen Gkm Gkm_analytic Gkm_crypto Gkm_keytree Gkm_lkh Hashtbl List Loss_tree Option Printf QCheck QCheck_alcotest Scheme Sim_driver
