test/core/test_session.ml: Alcotest Gkm List Printf Scheme Session
