test/core/test_session.mli:
