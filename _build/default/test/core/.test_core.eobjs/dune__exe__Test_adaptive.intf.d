test/core/test_adaptive.mli:
