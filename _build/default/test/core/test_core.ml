module Key = Gkm_crypto.Key
module Member = Gkm_lkh.Member
open Gkm

let range a b = List.init (b - a + 1) (fun i -> a + i)

(* ------------------------------------------------------------------ *)
(* A member-side harness over any scheme: members receive every rekey
   message and the (simulated unicast) placement notifications; the
   harness checks convergence and eviction lockout. *)

module Harness = struct
  type t = {
    scheme : Scheme.t;
    members : (int, Member.t) Hashtbl.t;
    evicted : (int, Member.t) Hashtbl.t;
    keys : (int, Key.t) Hashtbl.t; (* individual keys, by member *)
  }

  let create cfg =
    {
      scheme = Scheme.create cfg;
      members = Hashtbl.create 64;
      evicted = Hashtbl.create 64;
      keys = Hashtbl.create 64;
    }

  let register t m cls =
    let key = Scheme.register t.scheme ~member:m ~cls in
    Hashtbl.replace t.keys m key

  let depart t m = Scheme.enqueue_departure t.scheme m

  let rekey t =
    let msg = Scheme.rekey t.scheme in
    (match msg with
    | None -> ()
    | Some msg ->
        (* Placement notifications: bind (possibly new) leaf node ids
           to individual keys, creating member state on first admission. *)
        List.iter
          (fun (m, leaf) ->
            let key = Hashtbl.find t.keys m in
            match Hashtbl.find_opt t.members m with
            | Some member -> Member.install_path member [ (leaf, key) ]
            | None ->
                Hashtbl.replace t.members m
                  (Member.create ~id:m ~leaf_node:leaf ~individual_key:key))
          (Scheme.placements t.scheme);
        (* Eviction bookkeeping. *)
        Hashtbl.iter
          (fun m member ->
            if not (Scheme.is_member t.scheme m) then begin
              Hashtbl.remove t.members m;
              Hashtbl.replace t.evicted m member
            end)
          (Hashtbl.copy t.members);
        Hashtbl.iter (fun _ member -> ignore (Member.process member msg)) t.members;
        Hashtbl.iter (fun _ member -> ignore (Member.process member msg)) t.evicted);
    msg

  let converged t =
    match Scheme.group_key t.scheme with
    | None -> Hashtbl.length t.members = 0
    | Some dek ->
        Hashtbl.fold
          (fun _ member acc ->
            acc
            && match Member.group_key member with Some k -> Key.equal k dek | None -> false)
          t.members true

  let evicted_locked_out t =
    match Scheme.group_key t.scheme with
    | None -> true
    | Some dek ->
        Hashtbl.fold
          (fun _ member acc ->
            acc
            && match Member.group_key member with Some k -> not (Key.equal k dek) | None -> true)
          t.evicted true
end

let cfg kind ~s_period = { Scheme.kind; degree = 3; s_period; seed = 5 }

let check_harness h label =
  Alcotest.(check bool) (label ^ ": members converged") true (Harness.converged h);
  Alcotest.(check bool) (label ^ ": evicted locked out") true (Harness.evicted_locked_out h)

(* ------------------------------------------------------------------ *)
(* Scheme behaviour                                                    *)

let churn_run kind ~s_period ~intervals =
  let h = Harness.create (cfg kind ~s_period) in
  let next = ref 0 in
  for i = 1 to intervals do
    (* A few joins per interval, alternating classes. *)
    for _ = 1 to 3 do
      let m = !next in
      incr next;
      Harness.register h m (if m mod 2 = 0 then Scheme.Short else Scheme.Long)
    done;
    (* Depart roughly a third of the longest-standing members. *)
    if i mod 2 = 0 && Scheme.size h.scheme > 4 then begin
      let victims = [ !next - 7; !next - 11 ] in
      List.iter
        (fun m -> if m >= 0 && Scheme.is_member h.scheme m then Harness.depart h m)
        victims
    end;
    ignore (Harness.rekey h);
    check_harness h
      (Printf.sprintf "%s K=%d interval %d" (Scheme.kind_name kind) s_period i)
  done;
  h

let test_end_to_end kind () = ignore (churn_run kind ~s_period:3 ~intervals:14)

let test_end_to_end_k0 kind () = ignore (churn_run kind ~s_period:0 ~intervals:8)

let test_qt_migration_path () =
  let h = Harness.create (cfg Qt ~s_period:2) in
  Harness.register h 1 Scheme.Long;
  Harness.register h 2 Scheme.Long;
  ignore (Harness.rekey h);
  Alcotest.(check string) "starts in queue" "queue"
    (match Scheme.location h.scheme 1 with
    | `Queue -> "queue"
    | `L_tree -> "l"
    | `S_tree -> "s"
    | `Absent -> "absent");
  (* After the S-period elapses the member must migrate to L. *)
  ignore (Harness.rekey h);
  ignore (Harness.rekey h);
  Alcotest.(check string) "migrated to L" "l"
    (match Scheme.location h.scheme 1 with
    | `Queue -> "queue"
    | `L_tree -> "l"
    | `S_tree -> "s"
    | `Absent -> "absent");
  check_harness h "after migration";
  (* The migrated member departs: forward secrecy still holds. *)
  Harness.depart h 1;
  ignore (Harness.rekey h);
  check_harness h "after migrated member departs"

let test_tt_migration_path () =
  let h = Harness.create (cfg Tt ~s_period:2) in
  List.iter (fun m -> Harness.register h m Scheme.Short) (range 1 6);
  ignore (Harness.rekey h);
  Alcotest.(check int) "all in S" 6 (Scheme.s_size h.scheme);
  ignore (Harness.rekey h);
  ignore (Harness.rekey h);
  Alcotest.(check int) "all migrated to L" 6 (Scheme.l_size h.scheme);
  Alcotest.(check int) "S empty" 0 (Scheme.s_size h.scheme);
  check_harness h "TT after migration"

let test_pt_oracle_placement () =
  let h = Harness.create (cfg Pt ~s_period:5) in
  Harness.register h 1 Scheme.Short;
  Harness.register h 2 Scheme.Long;
  ignore (Harness.rekey h);
  Alcotest.(check bool) "short in S" true (Scheme.location h.scheme 1 = `S_tree);
  Alcotest.(check bool) "long in L" true (Scheme.location h.scheme 2 = `L_tree);
  (* PT never migrates. *)
  for _ = 1 to 8 do
    ignore (Harness.rekey h)
  done;
  Alcotest.(check bool) "short stays in S" true (Scheme.location h.scheme 1 = `S_tree);
  check_harness h "PT"

let test_qt_eviction_cost_is_queue_size () =
  (* The QT win: an S-partition departure costs ~Ns + 1 keys, not a
     tree update. *)
  let s = Scheme.create { kind = Qt; degree = 4; s_period = 10; seed = 9 } in
  List.iter (fun m -> ignore (Scheme.register s ~member:m ~cls:Short)) (range 1 20);
  ignore (Scheme.rekey s);
  (* 20 members in the queue; L empty. One departs. *)
  Scheme.enqueue_departure s 7;
  ignore (Scheme.rekey s);
  Alcotest.(check int) "S population" 19 (Scheme.s_size s);
  (* Cost: one DEK wrap per queue resident (19). L is empty. *)
  Alcotest.(check int) "eviction cost = Ns" 19 (Scheme.last_cost s)

let test_scheme_noop_interval () =
  let s = Scheme.create (cfg One_keytree ~s_period:0) in
  Alcotest.(check bool) "no-op rekey" true (Scheme.rekey s = None);
  Alcotest.(check int) "interval still advances" 1 (Scheme.interval s)

let test_scheme_errors () =
  let s = Scheme.create (cfg Tt ~s_period:2) in
  ignore (Scheme.register s ~member:1 ~cls:Short);
  (match Scheme.register s ~member:1 ~cls:Short with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double register accepted");
  (match Scheme.enqueue_departure s 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stranger departure accepted");
  (* Cancelling a pending join. *)
  Scheme.enqueue_departure s 1;
  ignore (Scheme.rekey s);
  Alcotest.(check int) "join cancelled" 0 (Scheme.size s)

let test_cumulative_accounting () =
  let s = Scheme.create (cfg Tt ~s_period:2) in
  let total = ref 0 in
  for i = 1 to 10 do
    ignore (Scheme.register s ~member:i ~cls:(if i mod 2 = 0 then Short else Long));
    if i > 3 then Scheme.enqueue_departure s (i - 3);
    ignore (Scheme.rekey s);
    total := !total + Scheme.last_cost s
  done;
  Alcotest.(check int) "cumulative = sum of last costs" !total (Scheme.cumulative_keys s)

let prop_scheme_churn_secure =
  QCheck.Test.make ~name:"random churn: all kinds converge and lock out" ~count:25
    QCheck.(pair (int_range 0 3) (list_of_size Gen.(1 -- 10) (int_range 0 5)))
    (fun (kind_idx, pattern) ->
      let kind = List.nth Scheme.all_kinds kind_idx in
      let h = Harness.create { Scheme.kind; degree = 3; s_period = 2; seed = 11 } in
      let next = ref 0 in
      List.for_all
        (fun joins ->
          for _ = 1 to joins do
            let m = !next in
            incr next;
            Harness.register h m (if m mod 3 = 0 then Scheme.Long else Scheme.Short)
          done;
          (if Scheme.size h.scheme > 2 then
             match
               List.find_opt (fun m -> Scheme.is_member h.scheme m) (List.init !next Fun.id)
             with
             | Some victim -> Harness.depart h victim
             | None -> ());
          ignore (Harness.rekey h);
          Harness.converged h && Harness.evicted_locked_out h)
        pattern)

(* ------------------------------------------------------------------ *)
(* Loss_tree                                                           *)

module LHarness = struct
  type t = {
    org : Loss_tree.t;
    members : (int, Member.t) Hashtbl.t;
    evicted : (int, Member.t) Hashtbl.t;
    keys : (int, Key.t) Hashtbl.t;
  }

  let create cfg =
    {
      org = Loss_tree.create cfg;
      members = Hashtbl.create 64;
      evicted = Hashtbl.create 64;
      keys = Hashtbl.create 64;
    }

  let register t m loss =
    Hashtbl.replace t.keys m (Loss_tree.register t.org ~member:m ~loss)

  let rekey t =
    match Loss_tree.rekey t.org with
    | None -> None
    | Some msg ->
        List.iter
          (fun (m, leaf) ->
            let key = Hashtbl.find t.keys m in
            match Hashtbl.find_opt t.members m with
            | Some member -> Member.install_path member [ (leaf, key) ]
            | None ->
                Hashtbl.replace t.members m
                  (Member.create ~id:m ~leaf_node:leaf ~individual_key:key))
          (Loss_tree.placements t.org);
        Hashtbl.iter
          (fun m member ->
            if not (Loss_tree.is_member t.org m) then begin
              Hashtbl.remove t.members m;
              Hashtbl.replace t.evicted m member
            end)
          (Hashtbl.copy t.members);
        Hashtbl.iter (fun _ member -> ignore (Member.process member msg)) t.members;
        Hashtbl.iter (fun _ member -> ignore (Member.process member msg)) t.evicted;
        Some msg

  let converged t =
    match Loss_tree.group_key t.org with
    | None -> Hashtbl.length t.members = 0
    | Some dek ->
        Hashtbl.fold
          (fun _ member acc ->
            acc
            && match Member.group_key member with Some k -> Key.equal k dek | None -> false)
          t.members true

  let locked_out t =
    match Loss_tree.group_key t.org with
    | None -> true
    | Some dek ->
        Hashtbl.fold
          (fun _ member acc ->
            acc
            && match Member.group_key member with Some k -> not (Key.equal k dek) | None -> true)
          t.evicted true
end

let test_loss_band_assignment () =
  let org = Loss_tree.create { degree = 4; seed = 0; assignment = By_loss [ 0.05; 0.15 ] } in
  Alcotest.(check int) "3 bands" 3 (Loss_tree.n_bands org);
  Alcotest.(check int) "low" 0 (Loss_tree.band_of_loss org 0.01);
  Alcotest.(check int) "boundary inclusive" 0 (Loss_tree.band_of_loss org 0.05);
  Alcotest.(check int) "mid" 1 (Loss_tree.band_of_loss org 0.1);
  Alcotest.(check int) "high" 2 (Loss_tree.band_of_loss org 0.2)

let test_loss_tree_end_to_end () =
  let h = LHarness.create (Loss_tree.two_band ~threshold:0.05 ()) in
  List.iter (fun m -> LHarness.register h m (if m mod 4 = 0 then 0.2 else 0.01)) (range 1 24);
  ignore (LHarness.rekey h);
  Alcotest.(check bool) "converged after admission" true (LHarness.converged h);
  let sizes = Loss_tree.band_sizes h.org in
  Alcotest.(check int) "low band" 18 sizes.(0);
  Alcotest.(check int) "high band" 6 sizes.(1);
  (* Departures from both bands. *)
  Loss_tree.enqueue_departure h.org 4;
  Loss_tree.enqueue_departure h.org 5;
  ignore (LHarness.rekey h);
  Alcotest.(check bool) "converged after evictions" true (LHarness.converged h);
  Alcotest.(check bool) "evicted locked out" true (LHarness.locked_out h)

let test_loss_tree_single_band_degenerates () =
  let h = LHarness.create { degree = 4; seed = 0; assignment = Random 1 } in
  List.iter (fun m -> LHarness.register h m 0.1) (range 1 9);
  let msg = Option.get (LHarness.rekey h) in
  (* Single tree: the root of that tree is the DEK, no synthetic node. *)
  let tree = List.hd (Loss_tree.trees h.org) in
  Alcotest.(check (option int)) "root is tree root"
    (Gkm_keytree.Keytree.root_id tree)
    (Some msg.root_node);
  Alcotest.(check bool) "converged" true (LHarness.converged h)

let test_loss_tree_random_round_robin () =
  let org = Loss_tree.create { degree = 4; seed = 0; assignment = Random 2 } in
  List.iter (fun m -> ignore (Loss_tree.register org ~member:m ~loss:0.0)) (range 1 10);
  ignore (Loss_tree.rekey org);
  let sizes = Loss_tree.band_sizes org in
  Alcotest.(check int) "even split" 5 sizes.(0);
  Alcotest.(check int) "even split'" 5 sizes.(1)

let test_loss_tree_band_transitions () =
  (* Emptying one band must collapse to single-tree state and back. *)
  let h = LHarness.create (Loss_tree.two_band ~threshold:0.05 ()) in
  List.iter (fun m -> LHarness.register h m 0.01) (range 1 4);
  LHarness.register h 100 0.3;
  ignore (LHarness.rekey h);
  Alcotest.(check bool) "two bands live" true (LHarness.converged h);
  (* The single high-loss member departs: collapse to one tree. *)
  Loss_tree.enqueue_departure h.org 100;
  ignore (LHarness.rekey h);
  Alcotest.(check bool) "collapsed, converged" true (LHarness.converged h);
  Alcotest.(check bool) "departed locked out" true (LHarness.locked_out h);
  (* A high-loss member joins again: hoist the DEK again. *)
  LHarness.register h 101 0.4;
  ignore (LHarness.rekey h);
  Alcotest.(check bool) "re-hoisted, converged" true (LHarness.converged h)

let prop_loss_tree_churn =
  QCheck.Test.make ~name:"loss forest churn stays convergent" ~count:25
    QCheck.(list_of_size Gen.(1 -- 8) (pair (int_range 0 3) bool))
    (fun ops ->
      let h = LHarness.create (Loss_tree.two_band ~threshold:0.05 ~seed:3 ()) in
      let next = ref 0 in
      List.for_all
        (fun (joins, do_depart) ->
          for _ = 1 to joins do
            let m = !next in
            incr next;
            LHarness.register h m (if m mod 2 = 0 then 0.2 else 0.01)
          done;
          (if do_depart && Loss_tree.size h.org > 1 then
             match
               List.find_opt (fun m -> Loss_tree.is_member h.org m) (List.init !next Fun.id)
             with
             | Some victim -> Loss_tree.enqueue_departure h.org victim
             | None -> ());
          ignore (LHarness.rekey h);
          LHarness.converged h && LHarness.locked_out h)
        ops)

(* ------------------------------------------------------------------ *)
(* Sim_driver cross-checks (scaled down)                               *)

let test_sim_partition_tt_beats_one_keytree () =
  (* alpha = 0.9 short-heavy population: TT should clearly beat the
     one-keytree baseline, as in Fig. 4. *)
  let run kind =
    Sim_driver.run_partition ~seed:3 ~n:400 ~alpha:0.9 ~ms:120.0 ~ml:7200.0 ~tp:60.0
      ~s_period:5 ~warmup:10 ~intervals:40 ~kind ()
  in
  let one = run Scheme.One_keytree and tt = run Scheme.Tt in
  Alcotest.(check bool)
    (Printf.sprintf "TT %.1f < one-keytree %.1f" tt.mean_keys one.mean_keys)
    true
    (tt.mean_keys < one.mean_keys);
  Alcotest.(check bool) "group size near target" true (abs_float (one.mean_size -. 400.0) < 80.0)

let test_sim_partition_pt_beats_one_keytree () =
  let run kind =
    Sim_driver.run_partition ~seed:4 ~n:400 ~alpha:0.9 ~ms:120.0 ~ml:7200.0 ~tp:60.0
      ~s_period:5 ~warmup:10 ~intervals:40 ~kind ()
  in
  let one = run Scheme.One_keytree and pt = run Scheme.Pt in
  Alcotest.(check bool)
    (Printf.sprintf "PT %.1f < one-keytree %.1f" pt.mean_keys one.mean_keys)
    true
    (pt.mean_keys < one.mean_keys)

let test_sim_loss_homogenized_beats_one () =
  let run organization =
    Sim_driver.run_loss ~seed:5 ~trials:3 ~n:1024 ~l:48 ~alpha:0.3 ~ph:0.2 ~pl:0.02
      ~organization ~transport:Sim_driver.Wka_bkr_transport ()
  in
  let one = run Sim_driver.Org_one in
  let homog = run (Sim_driver.Org_homogenized 0.05) in
  Alcotest.(check int) "one: delivered" 0 one.undelivered;
  Alcotest.(check int) "homog: delivered" 0 homog.undelivered;
  Alcotest.(check bool)
    (Printf.sprintf "homogenized %.0f < one %.0f" homog.mean_keys_sent one.mean_keys_sent)
    true
    (homog.mean_keys_sent < one.mean_keys_sent)

let test_sim_loss_fec_transport_runs () =
  let r =
    Sim_driver.run_loss ~seed:6 ~trials:2 ~n:256 ~l:16 ~alpha:0.25 ~ph:0.2 ~pl:0.02
      ~organization:(Sim_driver.Org_homogenized 0.05)
      ~transport:(Sim_driver.Fec_transport 0.25) ()
  in
  Alcotest.(check int) "delivered" 0 r.undelivered;
  Alcotest.(check bool) "bandwidth includes parity" true (r.mean_bandwidth >= r.mean_keys_sent)

let test_sim_mispartitioned_degrades () =
  let run organization =
    Sim_driver.run_loss ~seed:7 ~trials:3 ~n:1024 ~l:48 ~alpha:0.2 ~ph:0.2 ~pl:0.02
      ~organization ~transport:Sim_driver.Wka_bkr_transport ()
  in
  let good = run (Sim_driver.Org_homogenized 0.05) in
  let bad = run (Sim_driver.Org_mispartitioned { threshold = 0.05; beta = 0.8 }) in
  Alcotest.(check bool)
    (Printf.sprintf "beta=0.8 (%.0f) worse than beta=0 (%.0f)" bad.mean_keys_sent
       good.mean_keys_sent)
    true
    (bad.mean_keys_sent > good.mean_keys_sent)

(* Cross-validation: the executable schemes' measured cost per interval
   must track the paper's analytic model within a generous band (the
   implementation pays real costs the model ignores: DEK wraps above
   the partitions, local imbalance after splices, integer batching). *)
let test_sim_tracks_analytic () =
  List.iter
    (fun (alpha, kind, analytic_scheme) ->
      let n = 512 and ms = 180.0 and ml = 7200.0 and tp = 60.0 and k = 5 in
      let r =
        Sim_driver.run_partition ~seed:21 ~n ~alpha ~ms ~ml ~tp ~s_period:k ~warmup:10
          ~intervals:50 ~kind ()
      in
      let model =
        Gkm_analytic.Two_partition.cost
          { Gkm_analytic.Params.default with n; alpha; ms; ml; tp; k }
          analytic_scheme
      in
      let ratio = r.mean_keys /. model in
      Alcotest.(check bool)
        (Printf.sprintf "%s alpha=%.1f: sim %.1f vs model %.1f (ratio %.2f in [0.7, 1.6])"
           (Scheme.kind_name kind) alpha r.mean_keys model ratio)
        true
        (ratio > 0.7 && ratio < 1.6))
    [
      (0.8, Scheme.One_keytree, Gkm_analytic.Two_partition.One_keytree);
      (0.8, Scheme.Tt, Gkm_analytic.Two_partition.Tt);
      (0.8, Scheme.Qt, Gkm_analytic.Two_partition.Qt);
      (0.8, Scheme.Pt, Gkm_analytic.Two_partition.Pt);
      (0.5, Scheme.Tt, Gkm_analytic.Two_partition.Tt);
    ]

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gkm_core"
    [
      ( "scheme-end-to-end",
        List.map
          (fun kind ->
            Alcotest.test_case (Scheme.kind_name kind) `Quick (test_end_to_end kind))
          Scheme.all_kinds
        @ List.map
            (fun kind ->
              Alcotest.test_case
                (Scheme.kind_name kind ^ " K=0")
                `Quick (test_end_to_end_k0 kind))
            Scheme.all_kinds );
      ( "scheme-behaviour",
        [
          Alcotest.test_case "QT migration" `Quick test_qt_migration_path;
          Alcotest.test_case "TT migration" `Quick test_tt_migration_path;
          Alcotest.test_case "PT oracle placement" `Quick test_pt_oracle_placement;
          Alcotest.test_case "QT eviction cost = Ns" `Quick test_qt_eviction_cost_is_queue_size;
          Alcotest.test_case "no-op interval" `Quick test_scheme_noop_interval;
          Alcotest.test_case "argument errors" `Quick test_scheme_errors;
          Alcotest.test_case "cumulative accounting" `Quick test_cumulative_accounting;
        ]
        @ qsuite [ prop_scheme_churn_secure ] );
      ( "loss_tree",
        [
          Alcotest.test_case "band assignment" `Quick test_loss_band_assignment;
          Alcotest.test_case "end-to-end" `Quick test_loss_tree_end_to_end;
          Alcotest.test_case "single band degenerates" `Quick test_loss_tree_single_band_degenerates;
          Alcotest.test_case "random round-robin" `Quick test_loss_tree_random_round_robin;
          Alcotest.test_case "band transitions" `Quick test_loss_tree_band_transitions;
        ]
        @ qsuite [ prop_loss_tree_churn ] );
      ( "sim_driver",
        [
          Alcotest.test_case "TT beats one-keytree (sim)" `Slow test_sim_partition_tt_beats_one_keytree;
          Alcotest.test_case "PT beats one-keytree (sim)" `Slow test_sim_partition_pt_beats_one_keytree;
          Alcotest.test_case "loss-homogenized beats one (sim)" `Slow test_sim_loss_homogenized_beats_one;
          Alcotest.test_case "FEC transport runs (sim)" `Quick test_sim_loss_fec_transport_runs;
          Alcotest.test_case "mispartition degrades (sim)" `Slow test_sim_mispartitioned_degrades;
          Alcotest.test_case "sim tracks analytic model" `Slow test_sim_tracks_analytic;
        ] );
    ]
