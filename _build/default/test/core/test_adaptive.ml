module Prng = Gkm_crypto.Prng
module Membership = Gkm_workload.Membership
open Gkm

(* Drive an Adaptive-wrapped scheme with the two-class workload and
   check that the controller observes, fits, recommends and retunes. *)

let drive ~kind ~s_period ~alpha ~ms ~ml ~intervals ~seed =
  let tp = 60.0 in
  let n = 300 in
  let cfg = Membership.of_params ~n_target:n ~alpha ~ms ~ml ~tp in
  let buckets = Membership.intervals cfg ~rng:(Prng.create seed) ~n_intervals:intervals in
  let scheme = Scheme.create { kind; degree = 4; s_period; seed = seed + 1 } in
  let adaptive =
    Adaptive.create
      ~config:{ Adaptive.refit_every = 20; min_observations = 50; k_max = 25 }
      scheme ~tp
  in
  List.iter
    (fun (joins, departs) ->
      List.iter
        (fun (m, cls) ->
          let cls = match cls with Membership.Short -> Scheme.Short | Long -> Scheme.Long in
          ignore (Adaptive.register adaptive ~member:m ~cls))
        joins;
      List.iter
        (fun m ->
          if
            Scheme.is_member scheme m
            || List.exists (fun (j, _) -> j = m) joins
          then Adaptive.enqueue_departure adaptive m)
        departs;
      ignore (Adaptive.rekey adaptive))
    buckets;
  adaptive

let test_adaptive_observes_and_fits () =
  let a = drive ~kind:Scheme.Tt ~s_period:2 ~alpha:0.85 ~ms:150.0 ~ml:7200.0 ~intervals:80 ~seed:3 in
  Alcotest.(check bool)
    (Printf.sprintf "observations %d > 200" (Adaptive.observations a))
    true
    (Adaptive.observations a > 200);
  Alcotest.(check bool) "refitted at least twice" true (Adaptive.refits a >= 2);
  match Adaptive.last_fit a with
  | None -> Alcotest.fail "no fit"
  | Some m ->
      Alcotest.(check bool)
        (Printf.sprintf "fitted alpha %.2f near 0.85" m.alpha)
        true
        (abs_float (m.alpha -. 0.85) < 0.12);
      Alcotest.(check bool)
        (Printf.sprintf "fitted Ms %.0f near 150" m.ms)
        true
        (abs_float (m.ms -. 150.0) /. 150.0 < 0.4)

let test_adaptive_retunes_s_period () =
  (* Start with an absurd S-period; the controller should move it
     toward the analytic optimum. *)
  let a = drive ~kind:Scheme.Tt ~s_period:1 ~alpha:0.85 ~ms:150.0 ~ml:7200.0 ~intervals:80 ~seed:4 in
  let tuned = Scheme.s_period (Adaptive.scheme a) in
  Alcotest.(check bool)
    (Printf.sprintf "tuned S-period %d moved above 1" tuned)
    true (tuned > 1);
  Alcotest.(check bool)
    (Printf.sprintf "tuned S-period %d stays sane" tuned)
    true (tuned <= 25)

let test_adaptive_recommends_partition_for_churny_group () =
  let a = drive ~kind:Scheme.One_keytree ~s_period:0 ~alpha:0.9 ~ms:120.0 ~ml:10800.0 ~intervals:80 ~seed:5 in
  match Adaptive.recommendation a with
  | Some (kind, k) ->
      Alcotest.(check bool)
        (Printf.sprintf "recommends a partition scheme (%s, K=%d)" (Scheme.kind_name kind) k)
        true
        (kind <> Scheme.One_keytree && k > 0)
  | None -> Alcotest.fail "no recommendation"

let test_adaptive_recommends_one_keytree_for_stable_group () =
  (* Nearly everyone is long-duration: the one-keytree baseline should
     win (paper: "for applications that have very stable memberships,
     the one-keytree scheme is preferred"). *)
  let a = drive ~kind:Scheme.One_keytree ~s_period:0 ~alpha:0.05 ~ms:120.0 ~ml:10800.0 ~intervals:80 ~seed:6 in
  match Adaptive.recommendation a with
  | Some (kind, _) ->
      Alcotest.(check string) "one-keytree recommended" "one-keytree" (Scheme.kind_name kind)
  | None -> Alcotest.fail "no recommendation"

let test_adaptive_validation () =
  let scheme = Scheme.create (Scheme.default_config Scheme.Tt) in
  (match Adaptive.create ~config:{ Adaptive.default_config with refit_every = 0 } scheme ~tp:60.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "refit_every = 0 accepted");
  match Adaptive.create scheme ~tp:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tp = 0 accepted"

let test_set_s_period_live () =
  let scheme = Scheme.create { kind = Scheme.Qt; degree = 3; s_period = 100; seed = 8 } in
  ignore (Scheme.register scheme ~member:1 ~cls:Scheme.Short);
  ignore (Scheme.rekey scheme);
  Alcotest.(check bool) "member waits in queue" true (Scheme.location scheme 1 = `Queue);
  (* Lower the S-period to 1: the next interval must migrate. *)
  Scheme.set_s_period scheme 1;
  ignore (Scheme.rekey scheme);
  Alcotest.(check bool) "migrated after retuning" true (Scheme.location scheme 1 = `L_tree);
  match Scheme.set_s_period scheme (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative S-period accepted"

let () =
  Alcotest.run "gkm_adaptive"
    [
      ( "adaptive",
        [
          Alcotest.test_case "observes and fits" `Quick test_adaptive_observes_and_fits;
          Alcotest.test_case "retunes S-period" `Quick test_adaptive_retunes_s_period;
          Alcotest.test_case "recommends partitioning for churn" `Quick
            test_adaptive_recommends_partition_for_churny_group;
          Alcotest.test_case "recommends baseline for stable groups" `Quick
            test_adaptive_recommends_one_keytree_for_stable_group;
          Alcotest.test_case "validation" `Quick test_adaptive_validation;
          Alcotest.test_case "set_s_period live" `Quick test_set_s_period_live;
        ] );
    ]
