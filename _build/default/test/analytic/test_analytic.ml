open Gkm_analytic

(* ------------------------------------------------------------------ *)
(* Batch_cost (Appendix A)                                             *)

let test_ne_degenerate () =
  Alcotest.(check (float 0.0)) "no departures" 0.0 (Batch_cost.expected_keys ~d:4 ~n:100.0 ~l:0.0);
  Alcotest.(check (float 0.0)) "single member" 0.0 (Batch_cost.expected_keys ~d:4 ~n:1.0 ~l:1.0);
  Alcotest.(check (float 0.0)) "empty tree" 0.0 (Batch_cost.expected_keys ~d:4 ~n:0.0 ~l:0.0)

let test_ne_all_depart () =
  (* If everyone departs, every interior key is refreshed: cost =
     total child links = interior nodes * d for a full tree. A full
     binary tree over 8 leaves has 7 interior... 7 nodes with 2
     children each = 14 encrypted keys. *)
  let c = Batch_cost.expected_keys_int ~d:2 ~n:8 ~l:8 in
  Alcotest.(check (float 1e-6)) "full refresh of binary tree" 14.0 c

let test_ne_single_departure_binary () =
  (* One departure in a full binary tree of 8: the 3 keys on the path
     are refreshed, each encrypted under 2 children = 6, exactly. *)
  let c = Batch_cost.expected_keys_int ~d:2 ~n:8 ~l:1 in
  Alcotest.(check (float 1e-6)) "single departure" 6.0 c

let test_ne_matches_level_formula () =
  (* For a full, balanced tree the recursive walk must equal the
     paper's per-level formula (12): Ne = sum_i d * d^i * P_i. *)
  let d = 4 and n = 4096 and l = 37 in
  let nf = float_of_int n and lf = float_of_int l in
  let h = 6 in
  let direct = ref 0.0 in
  for i = 0 to h - 1 do
    let s = float_of_int n /. (float_of_int d ** float_of_int i) in
    let p = 1.0 -. Gkm_sim.Mathx.choose_ratio ~total:nf ~excluded:s ~draws:lf in
    direct := !direct +. (float_of_int d *. (float_of_int d ** float_of_int i) *. p)
  done;
  let walked = Batch_cost.expected_keys_int ~d ~n ~l in
  Alcotest.(check (float 1e-6)) "recursive = closed form" !direct walked

let test_ne_interpolation () =
  let lo = Batch_cost.expected_keys_int ~d:4 ~n:1024 ~l:10 in
  let hi = Batch_cost.expected_keys_int ~d:4 ~n:1024 ~l:11 in
  let mid = Batch_cost.expected_keys ~d:4 ~n:1024.0 ~l:10.5 in
  Alcotest.(check (float 1e-9)) "linear interpolation" ((lo +. hi) /. 2.0) mid

let test_ne_per_level () =
  let levels = Batch_cost.per_level ~d:2 ~n:8 ~l:8 in
  (* All interior keys updated: 1 at level 0, 2 at level 1, 4 at level 2. *)
  Alcotest.(check (list (pair int (float 1e-9))))
    "per-level counts"
    [ (0, 1.0); (1, 2.0); (2, 4.0) ]
    levels

let prop_ne_monotone_in_l =
  QCheck.Test.make ~name:"Ne monotone in departures" ~count:200
    QCheck.(triple (int_range 2 500) (int_range 0 100) (int_range 2 5))
    (fun (n, l, d) ->
      let c1 = Batch_cost.expected_keys_int ~d ~n ~l in
      let c2 = Batch_cost.expected_keys_int ~d ~n ~l:(l + 1) in
      c2 >= c1 -. 1e-9)

let prop_ne_bounded_by_full_refresh =
  QCheck.Test.make ~name:"Ne <= full-tree refresh" ~count:200
    QCheck.(triple (int_range 2 500) (int_range 1 500) (int_range 2 5))
    (fun (n, l, d) ->
      let c = Batch_cost.expected_keys_int ~d ~n ~l in
      let full = Batch_cost.expected_keys_int ~d ~n ~l:n in
      c <= full +. 1e-9)

let prop_ne_at_least_single_path =
  (* At least one departure refreshes at least the root's children. *)
  QCheck.Test.make ~name:"Ne >= 2 when l >= 1, n >= 2" ~count:200
    QCheck.(triple (int_range 2 500) (int_range 1 50) (int_range 2 5))
    (fun (n, l, d) ->
      let l = min l n in
      Batch_cost.expected_keys_int ~d ~n ~l >= 2.0 -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Two_partition (Section 3.3.1)                                       *)

let default = Params.default

let test_steady_state_conservation () =
  let dv = Two_partition.derive default in
  Alcotest.(check (float 1e-6)) "Ncs + Ncl = N" (float_of_int default.n) (dv.ncs +. dv.ncl);
  Alcotest.(check (float 1e-6)) "Ns + Nl = N" (float_of_int default.n) (dv.ns +. dv.nl);
  Alcotest.(check (float 1e-6)) "Lcs + Lcl = J" dv.j (dv.lcs +. dv.lcl);
  Alcotest.(check (float 1e-6)) "Ls + Lm = J" dv.j (dv.ls +. dv.lm);
  Alcotest.(check (float 1e-9)) "Ll = Lm in steady state" dv.lm dv.ll;
  Alcotest.(check bool) "all non-negative" true
    (dv.j >= 0.0 && dv.ns >= 0.0 && dv.nl >= 0.0 && dv.lm >= 0.0 && dv.ls >= 0.0)

let test_k0_degenerates_to_one_keytree () =
  let p = { default with k = 0 } in
  let one = Two_partition.cost p One_keytree in
  Alcotest.(check (float 1e-9)) "QT at K=0" one (Two_partition.cost p Qt);
  Alcotest.(check (float 1e-9)) "TT at K=0" one (Two_partition.cost p Tt)

let test_paper_fig3_shape () =
  (* TT at K=10 beats one-keytree by 20-30% (paper: up to 25%). *)
  let red_tt = Two_partition.reduction { default with k = 10 } Tt in
  Alcotest.(check bool)
    (Printf.sprintf "TT reduction %.1f%% in [18%%, 30%%]" (100.0 *. red_tt))
    true
    (red_tt > 0.18 && red_tt < 0.30);
  (* TT outperforms QT for large K. *)
  let p20 = { default with k = 20 } in
  Alcotest.(check bool) "TT < QT at K=20" true
    (Two_partition.cost p20 Tt < Two_partition.cost p20 Qt)

let test_paper_fig4_shape () =
  (* Crossover: schemes win for alpha > 0.6, lose for alpha <= 0.4;
     peak reduction ~31.4% at alpha = 0.9. *)
  let at alpha scheme = Two_partition.reduction { default with alpha } scheme in
  Alcotest.(check bool) "TT wins at 0.8" true (at 0.8 Tt > 0.0);
  Alcotest.(check bool) "QT wins at 0.8" true (at 0.8 Qt > 0.0);
  Alcotest.(check bool) "TT loses at 0.4" true (at 0.4 Tt < 0.0);
  Alcotest.(check bool) "QT loses at 0.4" true (at 0.4 Qt < 0.0);
  let peak = max (at 0.9 Tt) (at 0.9 Qt) in
  Alcotest.(check bool)
    (Printf.sprintf "peak %.1f%% in [28%%, 34%%]" (100.0 *. peak))
    true
    (peak > 0.28 && peak < 0.34)

let test_pt_always_best () =
  (* Over the paper's plotted range PT dominates. (At the alpha = 1
     extreme a queue of brand-new members can actually beat the PT
     oracle's single tree, so 1.0 is excluded here and covered by the
     one-keytree comparison below.) *)
  List.iter
    (fun alpha ->
      let p = { default with alpha } in
      let pt = Two_partition.cost p Pt in
      List.iter
        (fun scheme ->
          Alcotest.(check bool)
            (Printf.sprintf "PT <= %s at alpha=%.1f" (Two_partition.scheme_name scheme) alpha)
            true
            (pt <= Two_partition.cost p scheme +. 1e-6))
        Two_partition.all_schemes)
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 0.9 ];
  List.iter
    (fun alpha ->
      let p = { default with alpha } in
      Alcotest.(check bool)
        (Printf.sprintf "PT <= one-keytree at alpha=%.1f" alpha)
        true
        (Two_partition.cost p Pt <= Two_partition.cost p One_keytree +. 1e-6))
    [ 0.0; 0.5; 1.0 ]

let test_fig5_group_size_insensitive () =
  (* Fig. 5: across N in 1K..256K the relative savings stay near 22-30%. *)
  List.iter
    (fun n ->
      let p = { default with n } in
      let tt = Two_partition.reduction p Tt and qt = Two_partition.reduction p Qt in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d: TT %.1f%% QT %.1f%% in [18%%, 32%%]" n (100.0 *. tt) (100.0 *. qt))
        true
        (tt > 0.18 && tt < 0.32 && qt > 0.18 && qt < 0.32))
    [ 1024; 4096; 16384; 65536; 262144 ]

let test_best_k () =
  let k, cost = Two_partition.best_k default Tt ~k_max:20 in
  Alcotest.(check bool) "best K strictly beats K=0" true
    (cost < Two_partition.cost { default with k = 0 } Tt);
  Alcotest.(check bool) (Printf.sprintf "best K=%d in [5, 15]" k) true (k >= 5 && k <= 15)

let prop_derive_conserves =
  QCheck.Test.make ~name:"steady state conserves members and flows" ~count:200
    QCheck.(
      quad (int_range 10 100000) (float_range 0.0 1.0) (int_range 0 30)
        (pair (float_range 30.0 2000.0) (float_range 2000.0 100000.0)))
    (fun (n, alpha, k, (ms, ml)) ->
      let p = { default with n; alpha; k; ms; ml } in
      let dv = Two_partition.derive p in
      let nf = float_of_int n in
      abs_float (dv.ncs +. dv.ncl -. nf) < 1e-6 *. nf
      && abs_float (dv.ns +. dv.nl -. nf) < 1e-6 *. nf
      && abs_float (dv.ls +. dv.lm -. dv.j) < 1e-6 *. (dv.j +. 1.0)
      && dv.ns >= -1e-9 && dv.nl >= -1e-9 && dv.lm >= -1e-9)

let prop_costs_positive =
  QCheck.Test.make ~name:"scheme costs positive and finite" ~count:100
    QCheck.(pair (float_range 0.0 1.0) (int_range 0 20))
    (fun (alpha, k) ->
      let p = { default with n = 4096; alpha; k } in
      List.for_all
        (fun s ->
          let c = Two_partition.cost p s in
          Float.is_finite c && c >= 0.0)
        Two_partition.all_schemes)

(* ------------------------------------------------------------------ *)
(* Wka_bkr (Appendix B)                                                *)

let test_em_lossless () =
  Alcotest.(check (float 1e-9)) "no loss: one transmission" 1.0
    (Wka_bkr.expected_replications ~receivers:1000.0 (Wka_bkr.uniform 0.0))

let test_em_single_receiver () =
  (* E[M] for one receiver = 1 / (1 - p) (geometric). *)
  let p = 0.2 in
  Alcotest.(check (float 1e-6)) "geometric mean" (1.0 /. (1.0 -. p))
    (Wka_bkr.expected_replications ~receivers:1.0 (Wka_bkr.uniform p))

let test_em_grows_with_receivers () =
  let em r = Wka_bkr.expected_replications ~receivers:r (Wka_bkr.uniform 0.2) in
  Alcotest.(check bool) "more receivers, more replications" true
    (em 1.0 < em 10.0 && em 10.0 < em 1000.0)

let test_em_closed_form_two_receivers () =
  (* For R=2 with equal p:
     E[M] = sum_{m>=1} (1 - (1 - p^{m-1})^2)
          = 1 + sum_{j>=1} (2 p^j - p^{2j})
          = 1 + 2p/(1-p) - p^2/(1-p^2). *)
  let p = 0.3 in
  let expected = 1.0 +. (2.0 *. p /. (1.0 -. p)) -. (p *. p /. (1.0 -. (p *. p))) in
  Alcotest.(check (float 1e-6)) "closed form" expected
    (Wka_bkr.expected_replications ~receivers:2.0 (Wka_bkr.uniform p))

let test_tree_cost_zero_cases () =
  let comp = Wka_bkr.uniform 0.1 in
  Alcotest.(check (float 0.0)) "no departures" 0.0
    (Wka_bkr.tree_cost ~d:4 { size = 100; departures = 0; composition = comp });
  Alcotest.(check (float 0.0)) "empty tree" 0.0
    (Wka_bkr.tree_cost ~d:4 { size = 0; departures = 5; composition = comp })

let test_tree_cost_lossless_equals_ne () =
  (* With zero loss, WKA-BKR sends each key exactly once: E[V] = Ne. *)
  let n = 1024 and l = 16 and d = 4 in
  let ev = Wka_bkr.tree_cost ~d { size = n; departures = l; composition = Wka_bkr.uniform 0.0 } in
  let ne = Batch_cost.expected_keys_int ~d ~n ~l in
  Alcotest.(check (float 1e-6)) "E[V] = Ne at p=0" ne ev

let test_forest_single_tree_is_tree () =
  let t = { Wka_bkr.size = 512; departures = 8; composition = Wka_bkr.uniform 0.05 } in
  Alcotest.(check (float 1e-9)) "singleton forest" (Wka_bkr.tree_cost ~d:4 t)
    (Wka_bkr.forest_cost ~d:4 [ t ]);
  Alcotest.(check (float 1e-9)) "empty trees skipped" (Wka_bkr.tree_cost ~d:4 t)
    (Wka_bkr.forest_cost ~d:4
       [ t; { size = 0; departures = 0; composition = Wka_bkr.uniform 0.0 } ])

let test_composition_validation () =
  (match Wka_bkr.expected_replications ~receivers:1.0 [ (0.5, 0.1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fractions not summing to 1 accepted");
  match Wka_bkr.expected_replications ~receivers:1.0 [ (1.0, 1.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "loss rate 1 accepted"

(* ------------------------------------------------------------------ *)
(* Loss_homogenized (Section 4.3)                                      *)

let lc = Loss_homogenized.default

let test_fig6_endpoints () =
  List.iter
    (fun alpha ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "homogeneous population at alpha=%.0f" alpha)
        (Loss_homogenized.one_keytree lc ~alpha)
        (Loss_homogenized.loss_homogenized lc ~alpha))
    [ 0.0; 1.0 ]

let test_fig6_shape () =
  (* Two-random is slightly worse than one-keytree; loss-homogenized
     beats both in the heterogeneous regime; peak reduction ~12%. *)
  List.iter
    (fun alpha ->
      let one = Loss_homogenized.one_keytree lc ~alpha in
      let rand = Loss_homogenized.two_random lc ~alpha in
      let homog = Loss_homogenized.loss_homogenized lc ~alpha in
      Alcotest.(check bool)
        (Printf.sprintf "rand >= one at %.1f" alpha)
        true (rand >= one -. 1e-6);
      Alcotest.(check bool)
        (Printf.sprintf "homog < one at %.1f" alpha)
        true (homog < one))
    [ 0.1; 0.2; 0.3; 0.5; 0.8 ];
  let peak =
    List.fold_left
      (fun acc alpha -> max acc (Loss_homogenized.reduction lc ~alpha))
      0.0
      [ 0.1; 0.2; 0.3; 0.4; 0.5 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak reduction %.1f%% in [10%%, 16%%]" (100.0 *. peak))
    true
    (peak > 0.10 && peak < 0.16)

let test_fig7_shape () =
  (* Cost grows as misplacement grows, small beta still beats
     one-keytree, and beta=1.0 dips below beta=0.8 (the paper's noted
     anomaly). *)
  let at beta = Loss_homogenized.mispartitioned lc ~alpha:0.2 ~beta in
  Alcotest.(check (float 1e-6)) "beta=0 is the correct partition"
    (Loss_homogenized.loss_homogenized lc ~alpha:0.2)
    (at 0.0);
  Alcotest.(check bool) "monotone through 0.8" true
    (at 0.0 < at 0.2 && at 0.2 < at 0.4 && at 0.4 < at 0.6 && at 0.6 < at 0.8);
  Alcotest.(check bool) "beta small still beats one-keytree" true
    (at 0.1 < Loss_homogenized.one_keytree lc ~alpha:0.2);
  Alcotest.(check bool) "beta=1.0 cheaper than beta=0.8" true (at 1.0 < at 0.8)

let test_k_band_matches_two_band () =
  let two = Loss_homogenized.loss_homogenized lc ~alpha:0.3 in
  let k =
    Loss_homogenized.k_band lc ~rates:[ (0.3, lc.ph); (0.7, lc.pl) ]
  in
  Alcotest.(check (float 1e-6)) "k_band generalizes two-band" two k

let test_k_band_three_bands_beats_one () =
  let cfg = { lc with ph = 0.2 } in
  let one =
    Wka_bkr.forest_cost ~d:cfg.d
      [
        {
          size = cfg.n;
          departures = cfg.l;
          composition = [ (0.2, 0.2); (0.3, 0.05); (0.5, 0.01) ];
        };
      ]
  in
  let banded =
    Loss_homogenized.k_band cfg ~rates:[ (0.2, 0.2); (0.3, 0.05); (0.5, 0.01) ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "3 bands %.0f < mixed single tree %.0f" banded one)
    true (banded < one)

let prop_loss_homog_never_worse_interior =
  QCheck.Test.make ~name:"loss-homogenized <= one-keytree" ~count:40
    QCheck.(float_range 0.05 0.95)
    (fun alpha ->
      let small = { lc with n = 4096; l = 64 } in
      Loss_homogenized.loss_homogenized small ~alpha
      <= Loss_homogenized.one_keytree small ~alpha +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Proactive_fec (Section 4.4)                                         *)

let fc = Proactive_fec.default

let test_fec_block_lossless () =
  (* No loss: a block costs exactly k packets with a0 = 0. *)
  let c =
    Proactive_fec.block_cost fc ~receivers:1000.0 ~composition:(Wka_bkr.uniform 0.0) ~a0:0
  in
  Alcotest.(check (float 1e-9)) "k packets" (float_of_int fc.block_size) c

let test_fec_optimal_proactivity_positive_under_loss () =
  let a0, _ =
    Proactive_fec.optimal_block_cost fc ~receivers:10000.0 ~composition:(Wka_bkr.uniform 0.2)
  in
  Alcotest.(check bool) (Printf.sprintf "a0=%d > 0" a0) true (a0 > 0)

let test_fec_sec44_gain () =
  (* Paper: up to 25.7% reduction at ph=0.2, pl=0.02; we accept a peak
     in [18%, 32%] over the alpha sweep. *)
  let peak =
    List.fold_left
      (fun acc alpha -> max acc (Proactive_fec.reduction fc lc ~alpha))
      0.0
      [ 0.05; 0.1; 0.2; 0.3 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak FEC reduction %.1f%% in [18%%, 32%%]" (100.0 *. peak))
    true
    (peak > 0.18 && peak < 0.32)

let test_fec_homogeneous_fallback () =
  Alcotest.(check (float 1e-6)) "alpha=0 falls back"
    (Proactive_fec.one_keytree fc lc ~alpha:0.0)
    (Proactive_fec.loss_homogenized fc lc ~alpha:0.0)

let prop_fec_block_cost_decreasing_in_a0_initially =
  QCheck.Test.make ~name:"optimal block cost <= a0=0 cost" ~count:30
    QCheck.(float_range 0.01 0.3)
    (fun p ->
      let comp = Wka_bkr.uniform p in
      let _, best = Proactive_fec.optimal_block_cost fc ~receivers:5000.0 ~composition:comp in
      let naive = Proactive_fec.block_cost fc ~receivers:5000.0 ~composition:comp ~a0:0 in
      best <= naive +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Probabilistic placement [SMS00]                                     *)

let test_prob_kraft_feasible () =
  let p = Params.default in
  let ds, dl = Probabilistic.optimal_depths p in
  let dv = Two_partition.derive p in
  let df = float_of_int p.d in
  let kraft = (dv.ncs *. (df ** -.ds)) +. (dv.ncl *. (df ** -.dl)) in
  Alcotest.(check bool)
    (Printf.sprintf "kraft %.4f <= 1" kraft)
    true (kraft <= 1.0 +. 1e-6);
  Alcotest.(check bool) "depths >= 1" true (ds >= 1.0 && dl >= 1.0);
  (* Short-duration members leave more often: they must sit higher. *)
  Alcotest.(check bool) (Printf.sprintf "ds %.2f < dl %.2f" ds dl) true (ds < dl)

let test_prob_beats_balanced () =
  List.iter
    (fun alpha ->
      let p = { Params.default with alpha } in
      let red = Probabilistic.reduction p in
      Alcotest.(check bool)
        (Printf.sprintf "alpha=%.1f reduction %.1f%% >= 0" alpha (100.0 *. red))
        true
        (red >= -1e-9))
    [ 0.1; 0.3; 0.5; 0.8; 0.9 ]

let test_prob_homogeneous_no_gain () =
  (* With a single class there is nothing to exploit: the optimal tree
     is (nearly) balanced. *)
  let p = { Params.default with alpha = 0.0 } in
  Alcotest.(check bool)
    (Printf.sprintf "reduction %.2f%% small" (100.0 *. Probabilistic.reduction p))
    true
    (abs_float (Probabilistic.reduction p) < 0.02)

let prop_prob_cost_bounded =
  QCheck.Test.make ~name:"probabilistic cost within [0, balanced]" ~count:60
    QCheck.(pair (float_range 0.05 0.95) (int_range 1000 100000))
    (fun (alpha, n) ->
      let p = { Params.default with alpha; n } in
      let c = Probabilistic.cost p and b = Probabilistic.balanced_cost p in
      Float.is_finite c && c >= 0.0 && c <= b +. 1e-6)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gkm_analytic"
    [
      ( "batch_cost",
        [
          Alcotest.test_case "degenerate cases" `Quick test_ne_degenerate;
          Alcotest.test_case "all depart" `Quick test_ne_all_depart;
          Alcotest.test_case "single departure binary" `Quick test_ne_single_departure_binary;
          Alcotest.test_case "matches level formula" `Quick test_ne_matches_level_formula;
          Alcotest.test_case "interpolation" `Quick test_ne_interpolation;
          Alcotest.test_case "per level" `Quick test_ne_per_level;
        ]
        @ qsuite
            [ prop_ne_monotone_in_l; prop_ne_bounded_by_full_refresh; prop_ne_at_least_single_path ]
      );
      ( "two_partition",
        [
          Alcotest.test_case "steady-state conservation" `Quick test_steady_state_conservation;
          Alcotest.test_case "K=0 degenerates" `Quick test_k0_degenerates_to_one_keytree;
          Alcotest.test_case "Fig 3 shape" `Quick test_paper_fig3_shape;
          Alcotest.test_case "Fig 4 shape" `Quick test_paper_fig4_shape;
          Alcotest.test_case "PT always best" `Quick test_pt_always_best;
          Alcotest.test_case "Fig 5 group-size insensitivity" `Quick test_fig5_group_size_insensitive;
          Alcotest.test_case "best_k" `Quick test_best_k;
        ]
        @ qsuite [ prop_derive_conserves; prop_costs_positive ] );
      ( "wka_bkr",
        [
          Alcotest.test_case "lossless E[M]" `Quick test_em_lossless;
          Alcotest.test_case "single receiver geometric" `Quick test_em_single_receiver;
          Alcotest.test_case "grows with receivers" `Quick test_em_grows_with_receivers;
          Alcotest.test_case "closed form R=2" `Quick test_em_closed_form_two_receivers;
          Alcotest.test_case "zero cases" `Quick test_tree_cost_zero_cases;
          Alcotest.test_case "lossless = Ne" `Quick test_tree_cost_lossless_equals_ne;
          Alcotest.test_case "singleton forest" `Quick test_forest_single_tree_is_tree;
          Alcotest.test_case "composition validation" `Quick test_composition_validation;
        ] );
      ( "loss_homogenized",
        [
          Alcotest.test_case "Fig 6 endpoints" `Quick test_fig6_endpoints;
          Alcotest.test_case "Fig 6 shape" `Quick test_fig6_shape;
          Alcotest.test_case "Fig 7 shape" `Quick test_fig7_shape;
          Alcotest.test_case "k_band two-band equivalence" `Quick test_k_band_matches_two_band;
          Alcotest.test_case "three bands beat one tree" `Quick test_k_band_three_bands_beats_one;
        ]
        @ qsuite [ prop_loss_homog_never_worse_interior ] );
      ( "proactive_fec",
        [
          Alcotest.test_case "lossless block" `Quick test_fec_block_lossless;
          Alcotest.test_case "proactivity under loss" `Quick test_fec_optimal_proactivity_positive_under_loss;
          Alcotest.test_case "Section 4.4 gain" `Quick test_fec_sec44_gain;
          Alcotest.test_case "homogeneous fallback" `Quick test_fec_homogeneous_fallback;
        ]
        @ qsuite [ prop_fec_block_cost_decreasing_in_a0_initially ] );
      ( "probabilistic",
        [
          Alcotest.test_case "Kraft feasible, short sits higher" `Quick test_prob_kraft_feasible;
          Alcotest.test_case "never worse than balanced" `Quick test_prob_beats_balanced;
          Alcotest.test_case "homogeneous: no gain" `Quick test_prob_homogeneous_no_gain;
        ]
        @ qsuite [ prop_prob_cost_bounded ] );
    ]
