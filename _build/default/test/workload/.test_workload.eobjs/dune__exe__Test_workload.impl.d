test/workload/test_workload.ml: Alcotest Duration Fit Gkm_crypto Gkm_workload Hashtbl List Membership Printf QCheck QCheck_alcotest
