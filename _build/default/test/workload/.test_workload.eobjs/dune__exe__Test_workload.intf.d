test/workload/test_workload.mli:
