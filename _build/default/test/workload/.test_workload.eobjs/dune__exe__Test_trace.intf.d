test/workload/test_trace.mli:
