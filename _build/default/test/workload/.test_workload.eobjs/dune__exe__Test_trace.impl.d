test/workload/test_trace.ml: Alcotest Gkm_crypto Gkm_workload List Membership Printf QCheck QCheck_alcotest String Trace
