module Prng = Gkm_crypto.Prng
open Gkm_workload

let cfg = Membership.of_params ~n_target:100 ~alpha:0.7 ~ms:120.0 ~ml:3600.0 ~tp:60.0

let sample_events seed =
  Membership.generate cfg ~rng:(Prng.create seed) ~horizon:1800.0

let event_key (e : Membership.event) = (e.time, e.member, e.cls, e.kind)

let test_csv_roundtrip () =
  let events = sample_events 1 in
  match Trace.of_csv (Trace.to_csv events) with
  | Ok parsed ->
      Alcotest.(check int) "count" (List.length events) (List.length parsed);
      List.iter2
        (fun a b ->
          if event_key a <> event_key b then
            Alcotest.failf "event mismatch at t=%f member=%d" a.Membership.time a.member)
        (List.stable_sort (fun a b -> compare (event_key a) (event_key b)) events)
        (List.stable_sort (fun a b -> compare (event_key a) (event_key b)) parsed)
  | Error e -> Alcotest.fail e

let test_csv_errors () =
  (match Trace.of_csv "1.0,2,s\n" with
  | Error msg -> Alcotest.(check bool) "mentions line" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "short row accepted");
  (match Trace.of_csv "abc,2,s,join\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad float accepted");
  match Trace.of_csv "1.0,2,x,join\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad class accepted"

let test_csv_tolerates_blank_and_header () =
  let text = "time,member,class,kind\n\n10.5,3,l,join\n\n20.0,3,l,depart\n" in
  match Trace.of_csv text with
  | Ok [ a; b ] ->
      Alcotest.(check int) "member" 3 a.Membership.member;
      Alcotest.(check bool) "kinds" true (a.kind = `Join && b.kind = `Depart)
  | Ok _ -> Alcotest.fail "wrong event count"
  | Error e -> Alcotest.fail e

let test_durations_and_censoring () =
  let mk time member cls kind = { Membership.time; member; cls; kind } in
  let events =
    [
      mk 0.0 1 Membership.Short `Join;
      mk 0.0 2 Membership.Long `Join;
      mk 5.0 1 Membership.Short `Depart;
      mk 7.0 3 Membership.Short `Join;
    ]
  in
  Alcotest.(check (list (float 1e-9))) "durations" [ 5.0 ] (Trace.durations events);
  Alcotest.(check int) "censored" 2 (Trace.censored events)

let test_bucket_matches_membership_intervals () =
  (* Trace.bucket over a generated trace must agree with the generator's
     own bucketing. *)
  let rng = Prng.create 2 in
  let n = 10 in
  let direct = Membership.intervals cfg ~rng ~n_intervals:n in
  let rng = Prng.create 2 in
  let events = Membership.generate cfg ~rng ~horizon:(float_of_int n *. cfg.tp) in
  let from_trace = Trace.bucket ~tp:cfg.tp events in
  (* Same totals interval by interval (the trace may have one extra
     trailing bucket when the last event lands exactly on the horizon). *)
  List.iteri
    (fun i (joins, departs) ->
      if i < List.length from_trace - 1 || i < n - 1 then begin
        let joins', departs' = List.nth from_trace i in
        Alcotest.(check int) (Printf.sprintf "joins bucket %d" i) (List.length joins)
          (List.length joins');
        Alcotest.(check int) (Printf.sprintf "departs bucket %d" i) (List.length departs)
          (List.length departs')
      end)
    direct

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"csv roundtrip across seeds" ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let events = sample_events seed in
      match Trace.of_csv (Trace.to_csv events) with
      | Ok parsed -> List.length parsed = List.length events
      | Error _ -> false)

let () =
  Alcotest.run "gkm_trace"
    [
      ( "trace",
        [
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv errors" `Quick test_csv_errors;
          Alcotest.test_case "blank lines and header" `Quick test_csv_tolerates_blank_and_header;
          Alcotest.test_case "durations and censoring" `Quick test_durations_and_censoring;
          Alcotest.test_case "bucket matches generator" `Quick test_bucket_matches_membership_intervals;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_csv_roundtrip ] );
    ]
