module Prng = Gkm_crypto.Prng
open Gkm_workload

(* ------------------------------------------------------------------ *)
(* Duration                                                            *)

let sample_mean dist n seed =
  let rng = Prng.create seed in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Duration.sample dist rng
  done;
  !sum /. float_of_int n

let test_duration_exponential () =
  let d = Duration.exponential 100.0 in
  Alcotest.(check (float 1e-9)) "mean" 100.0 (Duration.mean d);
  let emp = sample_mean d 100_000 1 in
  Alcotest.(check bool) (Printf.sprintf "empirical %.1f" emp) true (abs_float (emp -. 100.0) < 2.0);
  Alcotest.(check (float 1e-9)) "survival at 0" 1.0 (Duration.survival d 0.0);
  Alcotest.(check (float 1e-12)) "survival at mean" (exp (-1.0)) (Duration.survival d 100.0)

let test_duration_pareto () =
  let d = Duration.pareto ~shape:2.0 ~scale:10.0 in
  Alcotest.(check (float 1e-9)) "mean" 20.0 (Duration.mean d);
  Alcotest.(check bool) "infinite mean when shape <= 1" true
    (Duration.mean (Duration.pareto ~shape:1.0 ~scale:5.0) = infinity);
  let emp = sample_mean d 200_000 2 in
  Alcotest.(check bool) (Printf.sprintf "empirical %.2f" emp) true (abs_float (emp -. 20.0) < 1.0);
  Alcotest.(check (float 1e-9)) "survival below scale" 1.0 (Duration.survival d 5.0);
  Alcotest.(check (float 1e-9)) "survival at 2x scale" 0.25 (Duration.survival d 20.0)

let test_duration_fixed () =
  let d = Duration.fixed 7.0 in
  Alcotest.(check (float 0.0)) "sample" 7.0 (Duration.sample d (Prng.create 3));
  Alcotest.(check (float 0.0)) "mean" 7.0 (Duration.mean d);
  Alcotest.(check (float 0.0)) "survival before" 1.0 (Duration.survival d 6.9);
  Alcotest.(check (float 0.0)) "survival after" 0.0 (Duration.survival d 7.0)

let test_duration_validation () =
  (match Duration.exponential 0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero mean accepted");
  match Duration.pareto ~shape:(-1.0) ~scale:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative shape accepted"

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)

let cfg = Membership.of_params ~n_target:500 ~alpha:0.8 ~ms:180.0 ~ml:10800.0 ~tp:60.0

let test_membership_steady_state_size () =
  (* Track population over a long horizon: it should hover near the
     target. *)
  let rng = Prng.create 4 in
  let events = Membership.generate cfg ~rng ~horizon:7200.0 in
  let current = ref 0 and min_pop = ref max_int and max_pop = ref 0 in
  List.iter
    (fun (e : Membership.event) ->
      (match e.kind with `Join -> incr current | `Depart -> decr current);
      if e.time > 1800.0 then begin
        if !current < !min_pop then min_pop := !current;
        if !current > !max_pop then max_pop := !current
      end)
    events;
  Alcotest.(check bool)
    (Printf.sprintf "population stays in [350, 650], saw [%d, %d]" !min_pop !max_pop)
    true
    (!min_pop > 350 && !max_pop < 650)

let test_membership_join_rate () =
  let rng = Prng.create 5 in
  let horizon = 6000.0 in
  let events = Membership.generate cfg ~rng ~horizon in
  let arrivals =
    List.length
      (List.filter
         (fun (e : Membership.event) -> e.kind = `Join && e.time > 0.0)
         events)
  in
  let expected = Membership.joins_per_interval cfg *. horizon /. cfg.tp in
  let ratio = float_of_int arrivals /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "arrivals %d vs expected %.0f" arrivals expected)
    true
    (ratio > 0.85 && ratio < 1.15)

let test_membership_events_sorted_and_paired () =
  let rng = Prng.create 6 in
  let events = Membership.generate cfg ~rng ~horizon:1200.0 in
  let rec sorted = function
    | (a : Membership.event) :: (b :: _ as tl) -> a.time <= b.time && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted events);
  (* Every departure has a prior join of the same member. *)
  let joined = Hashtbl.create 64 in
  List.iter
    (fun (e : Membership.event) ->
      match e.kind with
      | `Join ->
          Alcotest.(check bool) "no double join" false (Hashtbl.mem joined e.member);
          Hashtbl.add joined e.member ()
      | `Depart ->
          Alcotest.(check bool)
            (Printf.sprintf "member %d departed after joining" e.member)
            true (Hashtbl.mem joined e.member))
    events

let test_membership_intervals_bucketing () =
  let rng = Prng.create 7 in
  let buckets = Membership.intervals cfg ~rng ~n_intervals:20 in
  Alcotest.(check int) "bucket count" 20 (List.length buckets);
  (* Bucket 0 contains the seeded population. *)
  (match buckets with
  | (joins0, _) :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "initial population %d near 500" (List.length joins0))
        true
        (List.length joins0 >= 450 && List.length joins0 <= 560)
  | [] -> Alcotest.fail "no buckets");
  (* No member departs in a bucket before the bucket it joined in. *)
  let join_bucket = Hashtbl.create 64 in
  List.iteri
    (fun i (joins, _) -> List.iter (fun (m, _) -> Hashtbl.replace join_bucket m i) joins)
    buckets;
  List.iteri
    (fun i (_, departs) ->
      List.iter
        (fun m ->
          match Hashtbl.find_opt join_bucket m with
          | Some j ->
              Alcotest.(check bool)
                (Printf.sprintf "member %d: join bucket %d <= depart bucket %d" m j i)
                true (j <= i)
          | None -> Alcotest.fail "departure without join")
        departs)
    buckets

let test_membership_class_mix () =
  let rng = Prng.create 8 in
  let events = Membership.generate cfg ~rng ~horizon:6000.0 in
  let arrivals =
    List.filter (fun (e : Membership.event) -> e.kind = `Join && e.time > 0.0) events
  in
  let short =
    List.length (List.filter (fun (e : Membership.event) -> e.cls = Membership.Short) arrivals)
  in
  let frac = float_of_int short /. float_of_int (List.length arrivals) in
  Alcotest.(check bool)
    (Printf.sprintf "short fraction of arrivals %.3f near alpha=0.8" frac)
    true
    (abs_float (frac -. 0.8) < 0.05)

let prop_membership_determinism =
  QCheck.Test.make ~name:"generation deterministic in the seed" ~count:20
    QCheck.(int_range 0 500)
    (fun seed ->
      let run () =
        Membership.generate cfg ~rng:(Prng.create seed) ~horizon:600.0
        |> List.map (fun (e : Membership.event) -> (e.time, e.member, e.kind))
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Fit (Section 3.4 adaptive estimation)                               *)

let synth_durations ~n ~alpha ~ms ~ml ~seed =
  let rng = Prng.create seed in
  List.init n (fun _ ->
      if Prng.bernoulli rng alpha then Prng.exponential rng ~mean:ms
      else Prng.exponential rng ~mean:ml)

let test_fit_recovers_mixture () =
  let durations = synth_durations ~n:20_000 ~alpha:0.8 ~ms:180.0 ~ml:10800.0 ~seed:9 in
  let m = Fit.em durations in
  Alcotest.(check bool)
    (Printf.sprintf "alpha %.3f near 0.8" m.alpha)
    true
    (abs_float (m.alpha -. 0.8) < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "ms %.1f near 180" m.ms)
    true
    (abs_float (m.ms -. 180.0) /. 180.0 < 0.15);
  Alcotest.(check bool)
    (Printf.sprintf "ml %.0f near 10800" m.ml)
    true
    (abs_float (m.ml -. 10800.0) /. 10800.0 < 0.15)

let test_fit_orders_components () =
  let durations = synth_durations ~n:5_000 ~alpha:0.2 ~ms:60.0 ~ml:6000.0 ~seed:10 in
  let m = Fit.em durations in
  Alcotest.(check bool) "ms <= ml" true (m.ms <= m.ml)

let test_fit_classify () =
  let m = { Fit.alpha = 0.5; ms = 10.0; ml = 10_000.0 } in
  Alcotest.(check bool) "short duration classified short" true (Fit.classify m 1.0 = `Short);
  Alcotest.(check bool) "long duration classified long" true (Fit.classify m 9_000.0 = `Long)

let test_fit_likelihood_improves () =
  let durations = synth_durations ~n:3_000 ~alpha:0.7 ~ms:100.0 ~ml:5000.0 ~seed:11 in
  let fitted = Fit.em durations in
  let bad = { Fit.alpha = 0.5; ms = 1000.0; ml = 1001.0 } in
  Alcotest.(check bool) "fitted beats a bad model" true
    (Fit.log_likelihood fitted durations > Fit.log_likelihood bad durations)

let test_fit_validation () =
  (match Fit.em [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty input accepted");
  match Fit.em [ 1.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single observation accepted"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gkm_workload"
    [
      ( "duration",
        [
          Alcotest.test_case "exponential" `Quick test_duration_exponential;
          Alcotest.test_case "pareto" `Quick test_duration_pareto;
          Alcotest.test_case "fixed" `Quick test_duration_fixed;
          Alcotest.test_case "validation" `Quick test_duration_validation;
        ] );
      ( "membership",
        [
          Alcotest.test_case "steady-state size" `Quick test_membership_steady_state_size;
          Alcotest.test_case "join rate" `Quick test_membership_join_rate;
          Alcotest.test_case "sorted and paired" `Quick test_membership_events_sorted_and_paired;
          Alcotest.test_case "interval bucketing" `Quick test_membership_intervals_bucketing;
          Alcotest.test_case "class mix" `Quick test_membership_class_mix;
        ]
        @ qsuite [ prop_membership_determinism ] );
      ( "fit",
        [
          Alcotest.test_case "recovers mixture" `Quick test_fit_recovers_mixture;
          Alcotest.test_case "orders components" `Quick test_fit_orders_components;
          Alcotest.test_case "classify" `Quick test_fit_classify;
          Alcotest.test_case "likelihood improves" `Quick test_fit_likelihood_improves;
          Alcotest.test_case "validation" `Quick test_fit_validation;
        ] );
    ]
