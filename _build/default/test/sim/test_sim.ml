open Gkm_sim

let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Mathx                                                               *)

let test_lgamma_known () =
  (* Gamma(n) = (n-1)! *)
  checkf "lgamma 1 = 0" 0.0 (Mathx.lgamma 1.0);
  checkf "lgamma 2 = 0" 0.0 (Mathx.lgamma 2.0);
  Alcotest.(check (float 1e-10)) "lgamma 5 = ln 24" (log 24.0) (Mathx.lgamma 5.0);
  Alcotest.(check (float 1e-8)) "lgamma 11 = ln 10!" (log 3628800.0) (Mathx.lgamma 11.0);
  (* Gamma(1/2) = sqrt(pi) *)
  Alcotest.(check (float 1e-10)) "lgamma 0.5" (log (sqrt Float.pi)) (Mathx.lgamma 0.5)

let test_ln_choose () =
  Alcotest.(check (float 1e-9)) "C(5,2) = 10" (log 10.0) (Mathx.ln_choose 5.0 2.0);
  Alcotest.(check (float 1e-9)) "C(10,0) = 1" 0.0 (Mathx.ln_choose 10.0 0.0);
  Alcotest.(check (float 1e-9)) "C(10,10) = 1" 0.0 (Mathx.ln_choose 10.0 10.0);
  Alcotest.(check (float 1e-6)) "C(52,5) = 2598960" (log 2598960.0) (Mathx.ln_choose 52.0 5.0);
  Alcotest.(check bool) "C(3,5) = 0" true (Mathx.ln_choose 3.0 5.0 = neg_infinity)

let test_choose_ratio () =
  (* Probability that 2 draws from 10 miss a set of 3:
     C(7,2)/C(10,2) = 21/45. *)
  Alcotest.(check (float 1e-9))
    "hypergeometric miss" (21.0 /. 45.0)
    (Mathx.choose_ratio ~total:10.0 ~excluded:3.0 ~draws:2.0);
  checkf "no draws" 1.0 (Mathx.choose_ratio ~total:10.0 ~excluded:3.0 ~draws:0.0);
  checkf "nothing excluded" 1.0 (Mathx.choose_ratio ~total:10.0 ~excluded:0.0 ~draws:5.0);
  checkf "too many draws" 0.0 (Mathx.choose_ratio ~total:10.0 ~excluded:3.0 ~draws:8.0)

let prop_choose_ratio_bounds =
  QCheck.Test.make ~name:"choose_ratio in [0,1] and monotone in draws" ~count:300
    QCheck.(triple (int_range 1 1000) (int_range 0 1000) (int_range 0 1000))
    (fun (total, excluded, draws) ->
      let excluded = min excluded total in
      let total = float_of_int total
      and excluded = float_of_int excluded
      and draws = float_of_int draws in
      let r = Mathx.choose_ratio ~total ~excluded ~draws in
      let r' = Mathx.choose_ratio ~total ~excluded ~draws:(draws +. 1.0) in
      r >= 0.0 && r <= 1.0 && r' <= r +. 1e-12)

let prop_lgamma_recurrence =
  (* Gamma(x+1) = x Gamma(x)  =>  lgamma(x+1) = lgamma(x) + ln x *)
  QCheck.Test.make ~name:"lgamma recurrence" ~count:300
    QCheck.(float_range 0.1 50.0)
    (fun x ->
      let lhs = Mathx.lgamma (x +. 1.0) and rhs = Mathx.lgamma x +. log x in
      abs_float (lhs -. rhs) < 1e-9 *. (1.0 +. abs_float lhs))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Heap.to_sorted_list h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 2; 1 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      Heap.to_sorted_list h = List.sort compare l)

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: tl when y = x -> List.rev_append acc tl
    | y :: tl -> go (y :: acc) tl
  in
  go [] l

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap pop always yields current min" ~count:200
    QCheck.(list (pair bool int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then begin
            let expected =
              match List.sort compare !model with [] -> None | x :: _ -> Some x
            in
            let got = Heap.pop h in
            (match expected with Some x -> model := remove_one x !model | None -> ());
            got = expected
          end
          else begin
            Heap.push h v;
            model := v :: !model;
            true
          end)
        ops)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:3.0 (fun _ -> log := "c" :: !log);
  Engine.schedule e ~at:1.0 (fun _ -> log := "a" :: !log);
  Engine.schedule e ~at:2.0 (fun _ -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  checkf "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~at:1.0 (fun _ -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 10 then Engine.schedule_after engine ~delay:1.0 tick
  in
  Engine.schedule e ~at:0.0 tick;
  Engine.run e;
  Alcotest.(check int) "self-rescheduling event" 10 !count;
  checkf "clock" 9.0 (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~at:1.0 (fun _ -> incr fired);
  Engine.schedule e ~at:5.0 (fun _ -> incr fired);
  Engine.run ~until:2.0 e;
  Alcotest.(check int) "only events <= until fire" 1 !fired;
  checkf "clock advanced to until" 2.0 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest fire later" 2 !fired

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:5.0 (fun _ -> ());
  Engine.run e;
  match Engine.schedule e ~at:1.0 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "scheduling in the past must be rejected"

let test_engine_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~at:1.0 (fun en ->
      incr fired;
      Engine.stop en);
  Engine.schedule e ~at:2.0 (fun _ -> incr fired);
  Engine.run e;
  Alcotest.(check int) "stop discards pending" 1 !fired

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checkf "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s);
  checkf "min" 2.0 (Stats.min_value s);
  checkf "max" 9.0 (Stats.max_value s);
  checkf "total" 40.0 (Stats.total s);
  Alcotest.(check int) "count" 8 (Stats.count s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.variance s))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check (float 1e-9)) "merged mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-9)) "merged variance" (Stats.variance whole) (Stats.variance m);
  Alcotest.(check int) "merged count" (Stats.count whole) (Stats.count m)

let test_sample_quantiles () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  checkf "median" 3.0 (Stats.Sample.median s);
  checkf "q0" 1.0 (Stats.Sample.quantile s 0.0);
  checkf "q1" 5.0 (Stats.Sample.quantile s 1.0);
  checkf "q0.25" 2.0 (Stats.Sample.quantile s 0.25);
  (* Adding after a quantile query must re-sort. *)
  Stats.Sample.add s 0.0;
  checkf "q0 after add" 0.0 (Stats.Sample.quantile s 0.0)

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"welford mean = naive mean" ~count:300
    QCheck.(list_of_size Gen.(1 -- 100) (float_range (-1000.0) 1000.0))
    (fun l ->
      let s = Stats.create () in
      List.iter (Stats.add s) l;
      let naive = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
      abs_float (Stats.mean s -. naive) < 1e-6)

let prop_sample_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range 0.0 100.0)) (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (l, (q1, q2)) ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) l;
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.Sample.quantile s lo <= Stats.Sample.quantile s hi +. 1e-9)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gkm_sim"
    [
      ( "mathx",
        [
          Alcotest.test_case "lgamma known values" `Quick test_lgamma_known;
          Alcotest.test_case "ln_choose" `Quick test_ln_choose;
          Alcotest.test_case "choose_ratio" `Quick test_choose_ratio;
        ]
        @ qsuite [ prop_choose_ratio_bounds; prop_lgamma_recurrence ] );
      ( "heap",
        [
          Alcotest.test_case "basic operations" `Quick test_heap_basic;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ]
        @ qsuite [ prop_heap_sorts; prop_heap_interleaved ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "stop" `Quick test_engine_stop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "sample quantiles" `Quick test_sample_quantiles;
        ]
        @ qsuite [ prop_stats_mean_matches_naive; prop_sample_quantile_monotone ] );
    ]
