test/transport/test_packet.ml: Alcotest Array Bytes Gkm_crypto Gkm_lkh Gkm_net Gkm_transport Hashtbl List Option Packet Printf QCheck QCheck_alcotest
