test/transport/test_transport.mli:
