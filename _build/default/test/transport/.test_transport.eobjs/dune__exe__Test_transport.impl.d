test/transport/test_transport.ml: Alcotest Array Delivery Gen Gkm_analytic Gkm_crypto Gkm_lkh Gkm_net Gkm_transport Job List Multi_send Option Printf Proactive_fec QCheck QCheck_alcotest Wka_bkr
