test/transport/test_packet.mli:
