open Gkm_fec

(* ------------------------------------------------------------------ *)
(* GF(256)                                                             *)

let test_gf_add_is_xor () =
  Alcotest.(check int) "add" (0x57 lxor 0x83) (Gf256.add 0x57 0x83);
  Alcotest.(check int) "sub = add" (Gf256.add 0x13 0xfe) (Gf256.sub 0x13 0xfe)

let test_gf_mul_identities () =
  for a = 0 to 255 do
    Alcotest.(check int) "a*1 = a" a (Gf256.mul a 1);
    Alcotest.(check int) "a*0 = 0" 0 (Gf256.mul a 0);
    Alcotest.(check int) "0*a = 0" 0 (Gf256.mul 0 a)
  done

let test_gf_inverse () =
  for a = 1 to 255 do
    Alcotest.(check int) (Printf.sprintf "a * inv a = 1 for %d" a) 1 (Gf256.mul a (Gf256.inv a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gf256.inv 0))

let test_gf_div () =
  Alcotest.(check int) "div by self" 1 (Gf256.div 0x42 0x42);
  Alcotest.(check int) "0 / a = 0" 0 (Gf256.div 0 7);
  Alcotest.check_raises "div by 0" Division_by_zero (fun () -> ignore (Gf256.div 5 0))

let test_gf_exp_log () =
  for a = 1 to 255 do
    Alcotest.(check int) "exp(log a) = a" a (Gf256.exp (Gf256.log a))
  done;
  Alcotest.(check int) "generator order: exp 255 wraps" (Gf256.exp 0) (Gf256.exp 255)

let test_gf_pow () =
  Alcotest.(check int) "a^0 = 1" 1 (Gf256.pow 0x53 0);
  Alcotest.(check int) "0^0 = 1" 1 (Gf256.pow 0 0);
  Alcotest.(check int) "0^n = 0" 0 (Gf256.pow 0 5);
  Alcotest.(check int) "a^1 = a" 0x53 (Gf256.pow 0x53 1);
  Alcotest.(check int) "a^2 = a*a" (Gf256.mul 0x53 0x53) (Gf256.pow 0x53 2);
  (* Fermat: a^255 = 1 in GF(256)*. *)
  Alcotest.(check int) "a^255 = 1" 1 (Gf256.pow 0x53 255)

let gf_elt = QCheck.int_range 0 255
let gf_nonzero = QCheck.int_range 1 255

let prop_gf_mul_commutative =
  QCheck.Test.make ~name:"gf mul commutative" ~count:500 (QCheck.pair gf_elt gf_elt)
    (fun (a, b) -> Gf256.mul a b = Gf256.mul b a)

let prop_gf_mul_associative =
  QCheck.Test.make ~name:"gf mul associative" ~count:500 (QCheck.triple gf_elt gf_elt gf_elt)
    (fun (a, b, c) -> Gf256.mul a (Gf256.mul b c) = Gf256.mul (Gf256.mul a b) c)

let prop_gf_distributive =
  QCheck.Test.make ~name:"gf distributive" ~count:500 (QCheck.triple gf_elt gf_elt gf_elt)
    (fun (a, b, c) -> Gf256.mul a (Gf256.add b c) = Gf256.add (Gf256.mul a b) (Gf256.mul a c))

let prop_gf_div_inverts_mul =
  QCheck.Test.make ~name:"gf div inverts mul" ~count:500 (QCheck.pair gf_elt gf_nonzero)
    (fun (a, b) -> Gf256.div (Gf256.mul a b) b = a)

(* ------------------------------------------------------------------ *)
(* Reed-Solomon                                                        *)

let make_data rng k len =
  Array.init k (fun _ -> Gkm_crypto.Prng.bytes rng len)

let shards_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Bytes.equal x y) a b

let test_rs_roundtrip_no_loss () =
  let rng = Gkm_crypto.Prng.create 1 in
  let c = Reed_solomon.create ~k:8 in
  let data = make_data rng 8 32 in
  let shards = Array.to_list (Array.mapi (fun i s -> (i, s)) data) in
  match Reed_solomon.decode c ~shards with
  | Some recovered -> Alcotest.(check bool) "identity decode" true (shards_equal data recovered)
  | None -> Alcotest.fail "decode failed with all data shards"

let test_rs_recover_from_parity_only () =
  let rng = Gkm_crypto.Prng.create 2 in
  let c = Reed_solomon.create ~k:5 in
  let data = make_data rng 5 64 in
  let parity = Reed_solomon.encode c ~data ~nparity:5 in
  let shards = Array.to_list (Array.mapi (fun j p -> (5 + j, p)) parity) in
  match Reed_solomon.decode c ~shards with
  | Some recovered ->
      Alcotest.(check bool) "recovered from parity alone" true (shards_equal data recovered)
  | None -> Alcotest.fail "decode failed with k parity shards"

let test_rs_insufficient_shards () =
  let rng = Gkm_crypto.Prng.create 3 in
  let c = Reed_solomon.create ~k:4 in
  let data = make_data rng 4 16 in
  let shards = [ (0, data.(0)); (2, data.(2)); (3, data.(3)) ] in
  Alcotest.(check bool) "3 < k shards -> None" true (Reed_solomon.decode c ~shards = None)

let test_rs_duplicates_do_not_count () =
  let rng = Gkm_crypto.Prng.create 4 in
  let c = Reed_solomon.create ~k:3 in
  let data = make_data rng 3 8 in
  let shards = [ (0, data.(0)); (0, data.(0)); (1, data.(1)) ] in
  Alcotest.(check bool) "duplicate shard ignored" true (Reed_solomon.decode c ~shards = None)

let test_rs_k1_replication () =
  (* With k = 1 every parity shard equals the data shard: pure replication. *)
  let rng = Gkm_crypto.Prng.create 5 in
  let c = Reed_solomon.create ~k:1 in
  let data = make_data rng 1 20 in
  let parity = Reed_solomon.encode c ~data ~nparity:3 in
  Array.iter
    (fun p -> Alcotest.(check bool) "parity = data for k=1" true (Bytes.equal p data.(0)))
    parity

let test_rs_bad_args () =
  let c = Reed_solomon.create ~k:4 in
  (match Reed_solomon.parity_shard c ~data:[| Bytes.create 4 |] ~index:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong shard count accepted");
  (match
     Reed_solomon.parity_shard c
       ~data:[| Bytes.create 4; Bytes.create 4; Bytes.create 4; Bytes.create 5 |]
       ~index:0
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unequal lengths accepted");
  (match Reed_solomon.create ~k:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 accepted");
  match Reed_solomon.create ~k:256 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=256 accepted"

let test_rs_max_parity () =
  let c = Reed_solomon.create ~k:200 in
  Alcotest.(check int) "max parity" 56 (Reed_solomon.max_parity c)

(* Any k-subset of (k data + r parity) shards decodes to the data. *)
let prop_rs_any_k_subset =
  let gen =
    QCheck.Gen.(
      let* k = 1 -- 10 in
      let* r = 0 -- 10 in
      let* len = 1 -- 40 in
      let* seed = 0 -- 10000 in
      let* picks = list_size (return (k + r)) bool in
      return (k, r, len, seed, picks))
  in
  QCheck.Test.make ~name:"rs: any k distinct shards decode" ~count:300
    (QCheck.make
       ~print:(fun (k, r, len, seed, _) -> Printf.sprintf "k=%d r=%d len=%d seed=%d" k r len seed)
       gen)
    (fun (k, r, len, seed, picks) ->
      let rng = Gkm_crypto.Prng.create seed in
      let c = Reed_solomon.create ~k in
      let data = make_data rng k len in
      let parity = Reed_solomon.encode c ~data ~nparity:r in
      let all =
        Array.to_list (Array.mapi (fun i s -> (i, s)) data)
        @ Array.to_list (Array.mapi (fun j p -> (k + j, p)) parity)
      in
      (* Keep the shards selected by [picks]; pad deterministically to
         at least k shards by re-adding dropped ones in order. *)
      let picked = List.filteri (fun i _ -> List.nth picks i) all in
      let dropped = List.filteri (fun i _ -> not (List.nth picks i)) all in
      let rec pad chosen rest =
        if List.length chosen >= k then chosen
        else
          match rest with
          | [] -> chosen
          | s :: tl -> pad (s :: chosen) tl
      in
      let shards = pad picked dropped in
      match Reed_solomon.decode c ~shards with
      | Some recovered -> shards_equal data recovered
      | None -> List.length shards < k)

let prop_rs_parity_deterministic =
  QCheck.Test.make ~name:"rs: parity generation deterministic" ~count:100
    QCheck.(triple (int_range 1 12) (int_range 0 12) small_nat)
    (fun (k, j, seed) ->
      let j = min j (256 - k - 1) in
      let rng = Gkm_crypto.Prng.create seed in
      let c = Reed_solomon.create ~k in
      let data = make_data rng k 16 in
      Bytes.equal
        (Reed_solomon.parity_shard c ~data ~index:j)
        (Reed_solomon.parity_shard c ~data ~index:j))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gkm_fec"
    [
      ( "gf256",
        [
          Alcotest.test_case "add is xor" `Quick test_gf_add_is_xor;
          Alcotest.test_case "mul identities" `Quick test_gf_mul_identities;
          Alcotest.test_case "inverse" `Quick test_gf_inverse;
          Alcotest.test_case "div" `Quick test_gf_div;
          Alcotest.test_case "exp/log" `Quick test_gf_exp_log;
          Alcotest.test_case "pow" `Quick test_gf_pow;
        ]
        @ qsuite
            [
              prop_gf_mul_commutative;
              prop_gf_mul_associative;
              prop_gf_distributive;
              prop_gf_div_inverts_mul;
            ] );
      ( "reed_solomon",
        [
          Alcotest.test_case "identity decode" `Quick test_rs_roundtrip_no_loss;
          Alcotest.test_case "parity-only recovery" `Quick test_rs_recover_from_parity_only;
          Alcotest.test_case "insufficient shards" `Quick test_rs_insufficient_shards;
          Alcotest.test_case "duplicates don't count" `Quick test_rs_duplicates_do_not_count;
          Alcotest.test_case "k=1 is replication" `Quick test_rs_k1_replication;
          Alcotest.test_case "argument validation" `Quick test_rs_bad_args;
          Alcotest.test_case "max parity" `Quick test_rs_max_parity;
        ]
        @ qsuite [ prop_rs_any_k_subset; prop_rs_parity_deterministic ] );
    ]
